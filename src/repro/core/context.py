"""Context monitoring (paper section 4.5).

"The System CF provides a range of event types relating to context
information such as link quality, signal strength, signal-to-noise ratio,
available bandwidth, CPU utilisation, memory consumption and battery
levels.  In addition, individual ManetProtocol instances can choose to
provide protocol-specific context events. [...] MANETKit also provides a
'concentrator' for context events in the Framework Manager CF.  This acts
as a facade for higher-level software and also hides the fact that some low
level context information might be obtained by polling rather than by
waiting for events."

Decision *making* is deliberately out of scope — MANETKit provides context
monitoring and reconfiguration enactment, and "leaves the decision making
to higher-level software"; callers subscribe to the concentrator and drive
the :class:`~repro.core.reconfig.ReconfigurationManager` themselves.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.events.event import Event
from repro.events.types import EventOntology
from repro.opencom.component import Component


class ContextConcentrator:
    """Facade over all context information in one deployment.

    Event-driven sources are fed by the Framework Manager tapping every
    ``CONTEXT`` event; poll-driven sources are registered with
    :meth:`register_poller` and sampled on demand — the caller cannot tell
    which is which, which is the point of the facade.
    """

    def __init__(self, ontology: EventOntology) -> None:
        self.ontology = ontology
        self._latest: Dict[str, Event] = {}
        self._subscribers: List[Tuple[object, Callable[[Event], None]]] = []
        self._pollers: Dict[str, Callable[[], Any]] = {}
        self.updates = 0

    # -- event-driven path (called by the Framework Manager) -----------------

    def update(self, event: Event) -> None:
        self.updates += 1
        self._latest[event.etype.name] = event
        for required_type, callback in self._subscribers:
            if event.etype.is_a(required_type):  # type: ignore[arg-type]
                callback(event)

    def subscribe(self, etype_name: str, callback: Callable[[Event], None]) -> None:
        self._subscribers.append((self.ontology.get(etype_name), callback))

    def unsubscribe(self, callback: Callable[[Event], None]) -> None:
        self._subscribers = [
            (etype, cb) for etype, cb in self._subscribers if cb is not callback
        ]

    # -- poll-driven path ------------------------------------------------------

    def register_poller(self, name: str, poller: Callable[[], Any]) -> None:
        """Register a pull-style source hidden behind the facade."""
        self._pollers[name] = poller

    def unregister_poller(self, name: str) -> None:
        self._pollers.pop(name, None)

    # -- reading ------------------------------------------------------------------

    def read(self, name: str) -> Optional[Any]:
        """Latest value for a context name, event- or poll-sourced."""
        event = self._latest.get(name)
        if event is not None:
            return event.payload
        poller = self._pollers.get(name)
        if poller is not None:
            return poller()
        return None

    def latest_event(self, name: str) -> Optional[Event]:
        return self._latest.get(name)

    def known_names(self) -> List[str]:
        return sorted(set(self._latest) | set(self._pollers))

    def snapshot(self) -> Dict[str, Any]:
        """Every known context name with its current value."""
        return {name: self.read(name) for name in self.known_names()}


class ContextSensorComponent(Component):
    """Base class for periodic context sensors.

    A sensor samples a value on a timer and emits a context event through
    its owning unit when the value changes by more than ``threshold`` (or
    always, when ``threshold`` is None).  Subclasses/instances supply the
    sampling callable.
    """

    def __init__(
        self,
        name: str,
        unit,
        etype_name: str,
        sample: Callable[[], Any],
        interval: float = 5.0,
        threshold: Optional[float] = None,
        payload_key: str = "value",
    ) -> None:
        super().__init__(name)
        self.unit = unit
        self.etype_name = etype_name
        self.sample = sample
        self.interval = interval
        self.threshold = threshold
        self.payload_key = payload_key
        self._timer = None
        self._last: Optional[Any] = None
        self.provide_interface("IContext", "IContext")

    def on_start(self) -> None:
        timers = self.unit.find_local_interface("IScheduler")
        if timers is None and self.unit.deployment is not None:
            timers = self.unit.deployment.timers
        if timers is None:  # pragma: no cover - defensive
            return
        self._timer = timers.periodic(self.interval, self._tick)

    def on_stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    def _tick(self) -> None:
        value = self.sample()
        if (
            self.threshold is not None
            and self._last is not None
            and isinstance(value, (int, float))
            and abs(value - self._last) < self.threshold
        ):
            return
        self._last = value
        self.unit.emit(self.etype_name, payload={self.payload_key: value})

    def current(self) -> Any:
        """Direct (poll) read of the sensed value."""
        return self.sample()
