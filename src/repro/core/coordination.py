"""Coordinated distributed reconfiguration (paper section 7, future work).

"Our immediate plans are to integrate MANETKit into a wider dynamic
reconfiguration environment [...] this will also include coordinated
distributed dynamic reconfiguration as well as merely per-node
reconfiguration."

This module implements that plan as an in-band control protocol: a small
ManetProtocol CF (:class:`ReconfigCoordinatorCF`) floods *reconfiguration
commands* through the network.  A command names a registered action, and
carries an **activation time**: every node that hears the command (relayed
hop by hop with duplicate suppression) schedules the same enactment at the
same simulated instant, so the whole network switches over together even
though the command takes multiple hops to propagate.  Time-based
activation is the classic technique for coordinated switchover in systems
without a global coordinator.

Actions are looked up in a per-node registry (name -> callable taking the
deployment and a parameter string), so a deployment only ever executes
reconfigurations its operator registered — a flooded command cannot inject
arbitrary behaviour.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.manet_protocol import EventHandlerComponent, ManetProtocol
from repro.events.event import Event
from repro.events.registry import EventTuple
from repro.events.types import EventOntology
from repro.packetbb.address import Address
from repro.packetbb.message import Message
from repro.packetbb.tlv import TLV, TLVBlock

#: PacketBB message type for reconfiguration commands.
RECONFIG_MSG_TYPE = 31

#: TLV types local to this protocol.
TLV_ACTION = 50
TLV_PARAMS = 51
TLV_ACTIVATE_AT = 52

#: Default lead time between issuing a command and network-wide activation;
#: must exceed the flood's propagation time.
DEFAULT_LEAD_TIME = 1.0

COMMAND_HOP_LIMIT = 16

Action = Callable[[Any, Dict[str, Any]], None]


@dataclass
class CommandRecord:
    """Audit record of one command seen by this node."""

    originator: int
    seqnum: int
    action: str
    params: Dict[str, Any]
    activate_at: float
    enacted: bool = False
    error: Optional[str] = None


class _CommandHandler(EventHandlerComponent):
    handles = ("RECONFIG_IN",)

    def __init__(self, cf: "ReconfigCoordinatorCF") -> None:
        super().__init__("reconfig-command-handler")
        self.cf = cf

    def handle(self, event: Event) -> None:
        message: Message = event.payload
        cf = self.cf
        if message.originator is None or message.seqnum is None:
            return
        originator = message.originator.node_id
        if originator == cf.local_address:
            return
        key = (originator, message.seqnum)
        if key in cf.seen:
            return
        cf.seen[key] = event.timestamp
        # Relay first so the flood races ahead of local processing.
        if message.forwardable:
            relayed = Message(
                message.msg_type,
                originator=message.originator,
                hop_limit=(message.hop_limit or 1) - 1,
                hop_count=(message.hop_count or 0) + 1,
                seqnum=message.seqnum,
                tlv_block=message.tlv_block,
            )
            cf.send_message("RECONFIG_OUT", relayed)
        cf.accept_command(message, originator)


class ReconfigCoordinatorCF(ManetProtocol):
    """The coordination ManetProtocol: flood + schedule + enact."""

    protocol_class = "service"

    def __init__(
        self,
        ontology: EventOntology,
        lead_time: float = DEFAULT_LEAD_TIME,
        name: str = "reconfig-coordinator",
    ) -> None:
        # The event types are protocol-specific: define them on demand
        # (the ontology is extensible at runtime, section 4.2).
        ontology.define("RECONFIG_IN", "MSG_IN")
        ontology.define("RECONFIG_OUT", "MSG_OUT")
        super().__init__(name, ontology)
        self.configurator.update({"lead_time": lead_time})
        self.actions: Dict[str, Action] = {}
        self.seen: Dict[Tuple[int, int], float] = {}
        self.log: List[CommandRecord] = []
        self._seqnum = 0
        self.add_handler(_CommandHandler(self))
        self.set_event_tuple(
            EventTuple(required=["RECONFIG_IN"], provided=["RECONFIG_OUT"])
        )

    def on_install(self, deployment) -> None:
        deployment.system.load_network_driver(
            "reconfig-driver",
            [(RECONFIG_MSG_TYPE, "RECONFIG_IN", "RECONFIG_OUT")],
        )

    # -- action registry ------------------------------------------------------

    def register_action(self, name: str, action: Action) -> None:
        """Allow commands named ``name`` to run ``action(deployment, params)``."""
        self.actions[name] = action

    def unregister_action(self, name: str) -> None:
        self.actions.pop(name, None)

    # -- issuing ------------------------------------------------------------------

    def propose(
        self,
        action: str,
        params: Optional[Dict[str, Any]] = None,
        lead_time: Optional[float] = None,
    ) -> CommandRecord:
        """Flood a command; every node (incl. this one) enacts at T+lead.

        Returns this node's own audit record for the command.
        """
        if action not in self.actions:
            raise KeyError(
                f"action {action!r} is not registered on this coordinator "
                f"(has: {sorted(self.actions)})"
            )
        params = params or {}
        lead = lead_time if lead_time is not None else self.config("lead_time")
        activate_at = self.deployment.now + lead
        self._seqnum = (self._seqnum + 1) & 0xFFFF
        message = Message(
            RECONFIG_MSG_TYPE,
            originator=Address.from_node_id(self.local_address),
            hop_limit=COMMAND_HOP_LIMIT,
            hop_count=0,
            seqnum=self._seqnum,
            tlv_block=TLVBlock(
                [
                    TLV(TLV_ACTION, action.encode("utf-8")),
                    TLV(TLV_PARAMS, json.dumps(params, sort_keys=True).encode()),
                    TLV.of_int(TLV_ACTIVATE_AT, int(activate_at * 1000), width=8),
                ]
            ),
        )
        self.seen[(self.local_address, self._seqnum)] = self.deployment.now
        self.send_message("RECONFIG_OUT", message)
        return self._schedule(
            self.local_address, self._seqnum, action, params, activate_at
        )

    # -- receiving ---------------------------------------------------------------------

    def accept_command(self, message: Message, originator: int) -> Optional[CommandRecord]:
        action_tlv = message.tlv_block.find(TLV_ACTION)
        at_tlv = message.tlv_block.find(TLV_ACTIVATE_AT)
        if action_tlv is None or at_tlv is None:
            return None
        params_tlv = message.tlv_block.find(TLV_PARAMS)
        try:
            params = (
                json.loads(params_tlv.value.decode()) if params_tlv else {}
            )
        except (ValueError, UnicodeDecodeError):
            params = {}
        action = action_tlv.value.decode("utf-8", errors="replace")
        activate_at = at_tlv.as_int() / 1000.0
        return self._schedule(
            originator, message.seqnum or 0, action, params, activate_at
        )

    def _schedule(
        self,
        originator: int,
        seqnum: int,
        action: str,
        params: Dict[str, Any],
        activate_at: float,
    ) -> CommandRecord:
        record = CommandRecord(originator, seqnum, action, params, activate_at)
        self.log.append(record)
        delay = max(activate_at - self.deployment.now, 0.0)
        self.deployment.timers.one_shot(delay, lambda: self._enact(record))
        return record

    def _enact(self, record: CommandRecord) -> None:
        handler = self.actions.get(record.action)
        if handler is None:
            record.error = f"unknown action {record.action!r}"
            return
        try:
            with self.lock:
                handler(self.deployment, record.params)
            record.enacted = True
        except Exception as exc:
            record.error = str(exc)


# ---------------------------------------------------------------------------
# Standard coordinated actions
# ---------------------------------------------------------------------------

def action_switch_to_dymo(deployment, params: Dict[str, Any]) -> None:
    """Network-wide proactive -> reactive switchover."""
    for name in ("olsr", "mpr"):
        if deployment.manager.unit(name) is not None:
            deployment.undeploy(name)
    if deployment.manager.unit("dymo") is None:
        deployment.load_protocol(
            "dymo", **{k: v for k, v in params.items() if k == "route_timeout"}
        )


def action_switch_to_olsr(deployment, params: Dict[str, Any]) -> None:
    """Network-wide reactive -> proactive switchover."""
    for name in ("dymo", "aodv", "neighbour-detection"):
        if deployment.manager.unit(name) is not None:
            deployment.undeploy(name)
    if deployment.manager.unit("mpr") is None:
        deployment.load_protocol(
            "mpr", hello_interval=params.get("hello_interval", 2.0)
        )
    if deployment.manager.unit("olsr") is None:
        deployment.load_protocol(
            "olsr", tc_interval=params.get("tc_interval", 5.0)
        )


def action_apply_fisheye(deployment, params: Dict[str, Any]) -> None:
    from repro.protocols.olsr.fisheye import apply_fisheye

    if deployment.manager.unit("fisheye") is None:
        sequence = params.get("ttl_sequence")
        if sequence:
            apply_fisheye(deployment, tuple(sequence))
        else:
            apply_fisheye(deployment)


STANDARD_ACTIONS: Dict[str, Action] = {
    "switch-to-dymo": action_switch_to_dymo,
    "switch-to-olsr": action_switch_to_olsr,
    "apply-fisheye": action_apply_fisheye,
}


def deploy_coordinator(
    deployment,
    actions: Optional[Dict[str, Action]] = None,
    lead_time: float = DEFAULT_LEAD_TIME,
) -> ReconfigCoordinatorCF:
    """Deploy a coordinator with the standard action set (plus extras)."""
    coordinator = ReconfigCoordinatorCF(deployment.ontology, lead_time)
    for name, action in STANDARD_ACTIONS.items():
        coordinator.register_action(name, action)
    for name, action in (actions or {}).items():
        coordinator.register_action(name, action)
    deployment.deploy(coordinator)
    return coordinator
