"""The System CF (paper section 4.3, Fig 4).

The System CF is the base-layer CFS unit on top of which ManetProtocol
instances stack.  It acts as a surrogate for OS-specific functionality:

* its **C** element (``SysControl``) initialises the host's routing
  environment (IP forwarding, ICMP redirects), exposes the node's
  scheduler/timer service (``IScheduler``) and threadpool (``IThreadPool``),
  and registers poll-style context sources with the concentrator;
* its **S** element (``SysState``) manipulates the kernel routing table and
  lists network devices (``ISysState``);
* its **F** element (``SysForward``) provides send/receive primitives for
  protocol messages (``IForward``), grounded here in the simulated medium
  (standing in for sockets/libpcap/Netfilter);
* plug-ins tailor it per deployment: :class:`NetworkDriver` components map
  message types to event types (the OLSR case study loads a driver for
  HELLO/TC, section 5.1), :class:`PowerStatusComponent` generates
  ``POWER_STATUS`` context events, and :class:`NetlinkComponent`
  encapsulates the packet-filtering kernel module that reactive protocols
  need (section 5.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.context import ContextSensorComponent
from repro.core.unit import CFSUnit
from repro.errors import IntegrityError, ParseError
from repro.events.event import Event
from repro.events.registry import EventTuple, Requirement
from repro.events.types import EventOntology
from repro.opencom.component import Component
from repro.opencom.framework import ComponentFramework, Mutation
from repro.packetbb.message import Message, MsgType
from repro.packetbb.packet import Packet, decode_interned, encode
from repro.sim.kernel_table import DataPacket, NetfilterHooks
from repro.sim.medium import BROADCAST
from repro.sim.node import SimNode
from repro.utils.queues import EventQueue
from repro.utils.timers import TimerService


class SysControl(Component):
    """System C element: routing-environment initialisation + context."""

    def __init__(self, node: SimNode, timers: TimerService) -> None:
        super().__init__("sys-control")
        self.node = node
        self.timers = timers
        self.provide_interface("IControl", "IControl")
        self.provide_interface("IScheduler", "IScheduler", target=timers)
        self.provide_interface("IContext", "IContext")

    def init_routing_environment(self) -> None:
        """OS-independent routing setup (IP forwarding on, redirects off)."""
        self.node.ip_forward = True
        self.node.icmp_redirects = False

    def restore_routing_environment(self) -> None:
        self.node.ip_forward = False
        self.node.icmp_redirects = True

    # Poll-style context reads (hidden behind the concentrator facade).
    def battery_level(self) -> float:
        return self.node.battery_level()

    def cpu_load(self) -> float:
        return self.node.cpu_load()

    def memory_use(self) -> int:
        return self.node.memory_use()


class SysState(Component):
    """System S element: kernel route table manipulation + device listing."""

    def __init__(self, node: SimNode) -> None:
        super().__init__("sys-state")
        self.node = node
        self.provide_interface("ISysState", "ISysState")

    # -- kernel routing table -------------------------------------------------

    def add_route(
        self,
        destination: int,
        next_hop: int,
        metric: int = 1,
        lifetime: Optional[float] = None,
        proto: str = "",
    ) -> None:
        self.node.kernel_table.add_route(
            destination, next_hop, metric, lifetime, proto
        )

    def del_route(self, destination: int) -> bool:
        return self.node.kernel_table.del_route(destination)

    def refresh_route(self, destination: int, lifetime: float) -> bool:
        return self.node.kernel_table.refresh_route(destination, lifetime)

    def flush_routes(self) -> int:
        return self.node.kernel_table.flush()

    def replace_all(self, routes, proto: Optional[str] = None) -> None:
        self.node.kernel_table.replace_all(routes, proto)

    def kernel_version(self) -> int:
        """Monotonic kernel-table mutation counter.

        Lets route installers prove a rewrite redundant: if the version is
        unchanged since their own last write and their route set is too,
        the table still holds exactly what they would install.
        """
        return self.node.kernel_table.version

    def lookup(self, destination: int):
        return self.node.kernel_table.lookup(destination)

    def routes(self):
        return self.node.kernel_table.routes()

    # -- devices -------------------------------------------------------------------

    def devices(self) -> List[Tuple[str, int]]:
        return self.node.devices()

    def local_address(self) -> int:
        return self.node.node_id


class SysForward(Component):
    """System F element: send/receive primitives over the medium."""

    def __init__(self, system: "SystemCF") -> None:
        super().__init__("sys-forward")
        self.system = system
        self.node = system.node
        self.provide_interface("IForward", "IForward")
        self.messages_sent = 0
        self.messages_received = 0
        self.unknown_messages = 0
        self.malformed_packets = 0
        self._packet_seqnum = 0
        obs = getattr(self.node, "obs", None)
        if obs is not None:
            # Imported lazily: repro.protocols' package init registers the
            # protocols with the core registry, so a module-level import
            # here would be circular.
            from repro.protocols.common import MessageMetrics

            self._wire_metrics = MessageMetrics(obs.registry, node=self.node.node_id)
        else:
            self._wire_metrics = None

    def on_start(self) -> None:
        self.node.add_control_receiver(self._on_wire)

    def on_stop(self) -> None:
        self.node.remove_control_receiver(self._on_wire)

    # -- transmit ----------------------------------------------------------

    def send_message(
        self,
        message: Message,
        link_dst: int = BROADCAST,
        extra_messages: Optional[List[Message]] = None,
    ) -> bool:
        """Serialize and transmit one message (plus piggybacked extras)."""
        messages = [message] + list(extra_messages or [])
        self._packet_seqnum = (self._packet_seqnum + 1) & 0xFFFF
        packet = Packet(messages, seqnum=self._packet_seqnum)
        self.messages_sent += len(messages)
        msg_label = None
        obs = getattr(self.node, "obs", None)
        if obs is not None and obs.tracer is not None and obs.tracer.enabled:
            # Human-readable message label for the transmit trace record
            # (trace-only work; the disabled path stops at the obs check).
            try:
                msg_label = MsgType(message.msg_type).name
            except ValueError:
                msg_label = str(message.msg_type)
            if len(messages) > 1:
                msg_label = f"{msg_label}+{len(messages) - 1}"
        return self.node.send_control(encode(packet), link_dst, msg=msg_label)

    # -- receive ---------------------------------------------------------------

    def _on_wire(self, payload: bytes, sender: int) -> None:
        try:
            # A broadcast hands the *same* payload bytes to every receiver;
            # the interned decode parses each distinct frame once instead of
            # once per neighbour (parsed messages are read-only downstream).
            packet = decode_interned(payload)
        except ParseError:
            # A real daemon drops malformed control packets at the wire
            # (corruption happens; the fault injector makes it routine).
            self.malformed_packets += 1
            obs = getattr(self.node, "obs", None)
            if obs is not None:
                obs.registry.counter(
                    "wire.malformed_packets", node=self.node.node_id
                ).inc()
                tracer = obs.tracer
                if tracer is not None and tracer.enabled:
                    tracer.event(
                        "wire.malformed", node=self.node.node_id, sender=sender,
                        size=len(payload),
                    )
            return
        wire_metrics = self._wire_metrics
        for message in packet.messages:
            self.messages_received += 1
            if wire_metrics is not None:
                wire_metrics.note(message.msg_type, len(payload))
            in_event = self.system.in_event_for(message.msg_type)
            if in_event is None:
                self.unknown_messages += 1
                continue
            self.system.emit(in_event, payload=message, source=sender)


class NetworkDriver(Component):
    """Maps message types to the event types they enter/leave the system as.

    "The System CF is instructed to load a 'NetworkDriver' component that
    requires and provides HELLO_OUT/TC_OUT and HELLO_IN/TC_IN respectively"
    (section 5.1) — one driver instance can carry several such entries.
    """

    def __init__(
        self, name: str, entries: List[Tuple[int, str, str]]
    ) -> None:
        """``entries``: (message type, in-event name, out-event name)."""
        super().__init__(name)
        self.entries = list(entries)
        self.provide_interface("IDriver", "IDriver")

    def requires_events(self) -> List[Requirement]:
        return [Requirement(out_event) for _mt, _in, out_event in self.entries]

    def provides_events(self) -> List[str]:
        return [in_event for _mt, in_event, _out in self.entries]


class PowerStatusComponent(ContextSensorComponent):
    """Generates POWER_STATUS context events from the node battery."""

    def __init__(self, unit: "SystemCF", interval: float = 5.0) -> None:
        super().__init__(
            "power-status",
            unit,
            "POWER_STATUS",
            sample=unit.node.battery_level,
            interval=interval,
            payload_key="battery",
        )

    def provides_events(self) -> List[str]:
        return ["POWER_STATUS"]

    def requires_events(self) -> List[Requirement]:
        return []


class NetlinkComponent(Component):
    """The packet-filtering plug-in reactive protocols depend on.

    "In implementation, this component encapsulates the loading of a kernel
    module that employs Linux Netfilter hooks to examine, hold, drop, etc.
    packets.  It provides NO_ROUTE, ROUTE_UPDATE and SEND_ROUTE_ERR events
    [...]  On successful route discovery, the DYMO ManetProtocol instance
    sends a ROUTE_FOUND event to the Netlink component to trigger the
    re-injection of buffered packets into the network" (section 5.2).
    """

    #: Max packets buffered per destination awaiting route discovery.
    BUFFER_LIMIT = 16
    #: Min interval between ROUTE_UPDATE events per destination (rate limit).
    UPDATE_INTERVAL = 0.5

    def __init__(self, unit: "SystemCF") -> None:
        super().__init__("netlink")
        self.unit = unit
        self.node = unit.node
        self._buffers: Dict[int, EventQueue] = {}
        self._last_update: Dict[int, float] = {}
        self.buffered_count = 0
        self.reinjected_count = 0
        self.provide_interface("INetlink", "INetlink")

    def provides_events(self) -> List[str]:
        return ["NO_ROUTE", "ROUTE_UPDATE", "SEND_ROUTE_ERR"]

    def requires_events(self) -> List[Requirement]:
        # Exclusive: buffered packets must be re-injected exactly once.
        return [Requirement("ROUTE_FOUND", exclusive=True)]

    def on_start(self) -> None:
        self.node.install_hooks(
            NetfilterHooks(
                no_route=self._on_no_route,
                route_used=self._on_route_used,
                forward_error=self._on_forward_error,
            )
        )
        self.unit.registry.register_handler(
            "ROUTE_FOUND", self._on_route_found, label="netlink"
        )

    def on_stop(self) -> None:
        self.node.install_hooks(None)
        self.unit.registry.unregister_handler(self._on_route_found)

    # -- hook callbacks (data plane -> events) -------------------------------

    def _on_no_route(self, packet: DataPacket) -> None:
        buffer = self._buffers.setdefault(
            packet.dst, EventQueue(maxlen=self.BUFFER_LIMIT)
        )
        buffer.push(packet)
        self.buffered_count += 1
        self.unit.emit(
            "NO_ROUTE", payload={"destination": packet.dst, "packet": packet}
        )

    def _on_route_used(self, destination: int) -> None:
        now = self.node.scheduler.now
        last = self._last_update.get(destination)
        if last is not None and now - last < self.UPDATE_INTERVAL:
            return
        self._last_update[destination] = now
        self.unit.emit("ROUTE_UPDATE", payload={"destination": destination})

    def _on_forward_error(self, packet: DataPacket) -> None:
        self.unit.emit(
            "SEND_ROUTE_ERR",
            payload={"destination": packet.dst, "packet": packet},
        )

    # -- event handler (events -> data plane) ----------------------------------

    def _on_route_found(self, event: Event) -> None:
        destination = event.payload["destination"]
        buffer = self._buffers.pop(destination, None)
        if buffer is None:
            return
        for packet in buffer.drain():
            self.reinjected_count += 1
            self.node.reinject(packet)

    def pending_for(self, destination: int) -> int:
        buffer = self._buffers.get(destination)
        return len(buffer) if buffer is not None else 0

    def drop_buffered(self, destination: int) -> int:
        """Discard buffered packets after a failed route discovery."""
        buffer = self._buffers.pop(destination, None)
        if buffer is None:
            return 0
        dropped = buffer.clear()
        if self.node.stats is not None:
            for _ in range(dropped):
                self.node.stats.note_data_dropped(self.node.node_id)
        return dropped


def _system_integrity(cf: ComponentFramework, mutation: Mutation) -> None:
    """System CF integrity: core elements are fixed; one Netlink at most."""
    if mutation.kind == "remove" and mutation.component is not None:
        if mutation.component.name in ("sys-control", "sys-state", "sys-forward"):
            raise IntegrityError(
                f"System CF core element {mutation.component.name!r} "
                "cannot be removed"
            )
    if mutation.kind == "insert" and isinstance(mutation.component, NetlinkComponent):
        if cf.has_child("netlink"):
            raise IntegrityError("System CF already hosts a Netlink component")


class SystemCF(CFSUnit):
    """The base-layer CFS unit of a deployment (a singleton per node)."""

    def __init__(
        self,
        node: SimNode,
        timers: TimerService,
        ontology: EventOntology,
    ) -> None:
        super().__init__("system", ontology)
        self.node = node
        self.timers = timers
        self.register_integrity_rule(_system_integrity)

        self.sys_control = SysControl(node, timers)
        self.sys_state = SysState(node)
        self.sys_forward = SysForward(self)
        self.insert(self.sys_control)
        self.insert(self.sys_state)
        self.insert(self.sys_forward)
        self._driver_index: Dict[int, str] = {}

        self.registry.register_handler("MSG_OUT", self._on_msg_out, label="sys-forward")
        self.refresh_tuple()

    def on_start(self) -> None:
        super().on_start()
        self.sys_control.init_routing_environment()

    def on_stop(self) -> None:
        super().on_stop()
        self.sys_control.restore_routing_environment()

    # -- plug-in management ----------------------------------------------------

    def load_network_driver(
        self, name: str, entries: List[Tuple[int, str, str]]
    ) -> NetworkDriver:
        """Load a NetworkDriver (idempotent per driver name)."""
        existing = self.find_child(name)
        if isinstance(existing, NetworkDriver):
            return existing
        driver = NetworkDriver(name, entries)
        self.insert(driver)
        self.refresh_tuple()
        return driver

    def unload_network_driver(self, name: str) -> None:
        self.remove(name)
        self.refresh_tuple()

    def load_power_status(self, interval: float = 5.0) -> PowerStatusComponent:
        existing = self.find_child("power-status")
        if isinstance(existing, PowerStatusComponent):
            return existing
        sensor = PowerStatusComponent(self, interval)
        self.insert(sensor)
        self.refresh_tuple()
        return sensor

    def load_netlink(self) -> NetlinkComponent:
        existing = self.find_child("netlink")
        if isinstance(existing, NetlinkComponent):
            return existing
        netlink = NetlinkComponent(self)
        self.insert(netlink)
        self.refresh_tuple()
        return netlink

    # -- event tuple derivation ---------------------------------------------------

    def refresh_tuple(self) -> None:
        """Recompute the event tuple from the loaded plug-ins."""
        required: List[Requirement] = []
        provided: List[str] = []
        self._driver_index = {}
        for child in self.children():
            if isinstance(child, NetworkDriver):
                for msg_type, in_event, _out_event in child.entries:
                    self._driver_index[msg_type] = in_event
            requires = getattr(child, "requires_events", None)
            provides = getattr(child, "provides_events", None)
            if requires is not None:
                required.extend(requires())
            if provides is not None:
                provided.extend(provides())
        # De-duplicate preserving order.
        seen_req = set()
        unique_required = []
        for req in required:
            if (req.name, req.exclusive) not in seen_req:
                seen_req.add((req.name, req.exclusive))
                unique_required.append(req)
        unique_provided = list(dict.fromkeys(provided))
        self.set_event_tuple(EventTuple(unique_required, unique_provided))

    def in_event_for(self, msg_type: int) -> Optional[str]:
        return self._driver_index.get(msg_type)

    # -- outgoing message handling ----------------------------------------------------

    def _on_msg_out(self, event: Event) -> None:
        message: Message = event.payload
        link_dst = event.meta.get("link_dst", BROADCAST)
        extra = event.meta.get("piggyback")
        self.sys_forward.send_message(message, link_dst, extra)
