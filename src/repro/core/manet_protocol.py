"""The generic ManetProtocol CF and its fine-grained composition model.

A ManetProtocol instance is a CFS unit tailored per routing protocol (paper
section 4.2, Fig 3).  Its **C** element is the generic :class:`ManetControl`
sub-CF, which hosts the Event Registry, the Demux, and the plug-in Event
Source / Event Handler components that embody "the core logic of a routing
protocol implementation"; its **F** and **S** elements are protocol-specific
:class:`ForwardComponent` / :class:`StateComponent` plug-ins.

Integrity rules built into the generic CFs make subsequent tailoring a
relatively safe process: "ManetControl rejects attempts to add more than
one C element", and the ManetProtocol CF enforces at most one F and one S
element.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.unit import CFSUnit
from repro.errors import IntegrityError, ReconfigurationError
from repro.events.event import Event
from repro.events.types import EventOntology
from repro.opencom.component import Component
from repro.opencom.framework import ComponentFramework, Mutation
from repro.packetbb.message import Message
from repro.sim.medium import BROADCAST


class EventHandlerComponent(Component):
    """Base class for plug-in Event Handlers.

    "Event Handlers process events, and may emit further events in
    response" (section 4.2).  Handlers always run atomically: the active
    concurrency model invokes the protocol's ``process_event`` under the
    protocol's critical section.

    Subclasses set :attr:`handles` to the event type names they consume and
    override :meth:`handle`.
    """

    handles: Sequence[str] = ()

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.protocol: Optional["ManetProtocol"] = None
        self.events_handled = 0
        self.provide_interface("IEventSink", "IEventSink")

    def attach(self, protocol: "ManetProtocol") -> None:
        self.protocol = protocol
        for etype_name in self.handles:
            protocol.registry.register_handler(etype_name, self._dispatch, self.name)

    def detach(self) -> None:
        if self.protocol is not None:
            self.protocol.registry.unregister_handler(self._dispatch)
            self.protocol = None

    def _dispatch(self, event: Event) -> None:
        self.events_handled += 1
        self.handle(event)

    def handle(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def emit(self, etype_name: str, payload: Any = None, **meta: Any) -> int:
        """Emit a follow-up event through the owning protocol."""
        if self.protocol is None:
            raise ReconfigurationError(f"handler {self.name!r} is not attached")
        return self.protocol.emit(etype_name, payload, meta=meta or None)


class EventSourceComponent(Component):
    """Base class for plug-in Event Sources.

    "Event Sources only emit events — typically driven by a timer"
    (section 4.2).  Subclasses override :meth:`generate`; the base class
    manages the periodic timer (with protocol-standard jitter).
    """

    def __init__(
        self,
        name: str,
        interval: float,
        jitter: float = 0.0,
        initial_delay: Optional[float] = None,
    ) -> None:
        super().__init__(name)
        self.protocol: Optional["ManetProtocol"] = None
        self.interval = interval
        self.jitter = jitter
        #: delay before the first emission; defaults to one full interval.
        self.initial_delay = initial_delay
        self._timer = None
        self.emissions = 0
        self.provide_interface("IEventSource", "IEventSource")

    def attach(self, protocol: "ManetProtocol") -> None:
        self.protocol = protocol
        protocol.registry.register_source(self.name, self)

    def detach(self) -> None:
        if self.protocol is not None:
            self.protocol.registry.unregister_source(self.name)
            self.protocol = None

    def on_start(self) -> None:
        if self.protocol is None or self.protocol.deployment is None:
            return
        self._schedule(
            self.initial_delay if self.initial_delay is not None else self.interval
        )

    def on_stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    def _schedule(self, delay: float) -> None:
        timers = self.protocol.deployment.timers
        if self.jitter > 0:
            delay -= timers.rng.uniform(0, self.jitter) * delay
        self._timer = timers.one_shot(max(delay, 0.0), self._fire)

    def _fire(self) -> None:
        # The source runs inside the protocol's critical section so that
        # timer-driven emissions are atomic w.r.t. event handling.
        if self.protocol is None or self.lifecycle != Component.STARTED:
            return
        with self.protocol.lock:
            self.emissions += 1
            self.generate()
        self._schedule(self.interval)

    def reschedule(self, delay: float) -> None:
        """Pull the next emission forward (triggered messages)."""
        if self._timer is not None:
            self._timer.stop()
        self._schedule(delay)

    def generate(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def emit(self, etype_name: str, payload: Any = None, **meta: Any) -> int:
        if self.protocol is None:
            raise ReconfigurationError(f"source {self.name!r} is not attached")
        return self.protocol.emit(etype_name, payload, meta=meta or None)


class ForwardComponent(Component):
    """Base class for a protocol's F element (forwarding strategy)."""

    def __init__(self, name: str = "forward") -> None:
        super().__init__(name)
        self.protocol: Optional["ManetProtocol"] = None
        self.provide_interface("IForward", "IForwardProto")

    def attach(self, protocol: "ManetProtocol") -> None:
        self.protocol = protocol

    def detach(self) -> None:
        self.protocol = None


class StateComponent(Component):
    """Base class for a protocol's S element.

    The CFS pattern "encourages designers to factor out the state from
    their protocol designs and put it into distinct S components" (section
    4.5) — which is what makes carrying an S component across a protocol
    replacement the standard state-management technique.
    """

    def __init__(self, name: str = "state") -> None:
        super().__init__(name)
        self.protocol: Optional["ManetProtocol"] = None
        self.provide_interface("IState", "IState")

    def attach(self, protocol: "ManetProtocol") -> None:
        self.protocol = protocol

    def detach(self) -> None:
        self.protocol = None


class Configurator(Component):
    """Holds and applies a protocol's named configuration parameters."""

    def __init__(self, defaults: Optional[Dict[str, Any]] = None) -> None:
        super().__init__("configurator")
        self.params: Dict[str, Any] = dict(defaults or {})
        self.provide_interface("IConfigure", "IConfigure")

    def get(self, key: str, default: Any = None) -> Any:
        return self.params.get(key, default)

    def set(self, key: str, value: Any) -> None:
        self.params[key] = value

    def update(self, params: Dict[str, Any]) -> None:
        self.params.update(params)

    def get_state(self) -> Dict[str, Any]:
        return {"params": dict(self.params)}

    def set_state(self, state: Dict[str, Any]) -> None:
        self.params.update(state.get("params", {}))


def _manet_control_integrity(cf: ComponentFramework, mutation: Mutation) -> None:
    """ManetControl rejects attempts to add more than one C element.

    The ManetControl CF itself *is* the protocol's C element (it provides
    ``IControl``), so any plug-in claiming to provide ``IControl`` would be
    a second C element and is vetoed.
    """
    if mutation.kind in ("insert", "replace") and mutation.component is not None:
        if mutation.component.find_interface_by_type("IControl") is not None:
            raise IntegrityError(
                f"{cf.name}: already has a C element; refusing a second"
            )


class ManetControl(ComponentFramework):
    """The generic C-element sub-CF of every ManetProtocol.

    Hosts the Event Sources and Event Handlers, the Configurator, and the
    Demux (event dispatch through the protocol's Event Registry).  Provides
    the generic operations to initialise/start/stop a protocol's execution
    and to push/pop events (section 4.2).
    """

    def __init__(self, protocol: "ManetProtocol") -> None:
        super().__init__(f"{protocol.name}.control")
        self.protocol = protocol
        self.register_integrity_rule(_manet_control_integrity)
        self.configurator = Configurator()
        self.insert(self.configurator)
        self.provide_interface("IControl", "IControl")
        self.provide_interface("IPush", "IPushControl")

    # Demux: deliver one event through the registry to the plug-ins.
    def demux(self, event: Event) -> int:
        return self.protocol.registry.dispatch(event)

    def push(self, event: Event) -> int:
        """Inject an event as if it had arrived from the graph."""
        with self.protocol.lock:
            self.protocol.process_event(event)
        return 1


def _manet_protocol_integrity(cf: ComponentFramework, mutation: Mutation) -> None:
    """At most one F element and one S element per ManetProtocol."""
    if mutation.kind != "insert" or mutation.component is None:
        return
    component = mutation.component
    if isinstance(component, ForwardComponent):
        for child in cf.children():
            if isinstance(child, ForwardComponent):
                raise IntegrityError(
                    f"{cf.name}: already has an F element ({child.name!r})"
                )
    if isinstance(component, StateComponent):
        for child in cf.children():
            if isinstance(child, StateComponent):
                raise IntegrityError(
                    f"{cf.name}: already has an S element ({child.name!r})"
                )


class ManetProtocol(CFSUnit):
    """A protocol CFS unit: generic machinery + protocol plug-ins."""

    def __init__(self, name: str, ontology: EventOntology) -> None:
        super().__init__(name, ontology)
        self.register_integrity_rule(_manet_protocol_integrity)
        self.control = ManetControl(self)
        self.insert(self.control)
        self._forward: Optional[ForwardComponent] = None
        self._state: Optional[StateComponent] = None

    # -- deployment hooks -------------------------------------------------------

    def on_install(self, deployment: "Any") -> None:
        """Called by :meth:`ManetKit.deploy` after registration.

        Protocol installation "typically entails reconfiguring some
        existing MANETKit CFs and if necessary loading additional
        components to satisfy specific requirements" (section 5.1) — e.g.
        loading NetworkDriver / PowerStatus / Netlink plug-ins into the
        System CF.  Subclasses override.
        """

    def on_uninstall(self, deployment: "Any") -> None:
        """Called by :meth:`ManetKit.undeploy` before removal."""

    # -- composition conveniences -----------------------------------------------

    @property
    def configurator(self) -> Configurator:
        return self.control.configurator

    def config(self, key: str, default: Any = None) -> Any:
        return self.control.configurator.get(key, default)

    def add_handler(self, handler: EventHandlerComponent) -> EventHandlerComponent:
        # Attach before insert: insertion into a started CF starts the
        # plug-in immediately, and its hooks need the protocol reference.
        handler.attach(self)
        self.control.insert(handler)
        return handler

    def add_source(self, source: EventSourceComponent) -> EventSourceComponent:
        source.attach(self)
        self.control.insert(source)
        return source

    def set_forward(self, forward: ForwardComponent) -> ForwardComponent:
        if self._forward is not None:
            raise IntegrityError(
                f"{self.name}: F element already present; use replace_component"
            )
        self.insert(forward)
        forward.attach(self)
        self._forward = forward
        return forward

    def set_state(self, state: StateComponent) -> StateComponent:
        if self._state is not None:
            raise IntegrityError(
                f"{self.name}: S element already present; use replace_component"
            )
        self.insert(state)
        state.attach(self)
        self._state = state
        return state

    @property
    def forward(self) -> Optional[ForwardComponent]:
        return self._forward

    @property
    def state(self) -> Optional[StateComponent]:
        return self._state

    # -- fine-grained reconfiguration ----------------------------------------------

    def replace_component(
        self,
        name: str,
        replacement: Component,
        transfer_state: bool = True,
    ) -> Component:
        """Hot-swap a plug-in under the protocol's critical section.

        "By ensuring that any current processing of protocol events is
        completed before reconfiguration operations are run [...] the
        critical section enables the ManetProtocol instance to be in a
        stable state in which reconfiguration changes can be safely made"
        (section 4.5).
        """
        with self.lock:
            host: ComponentFramework
            if self.control.has_child(name):
                host = self.control
            elif self.has_child(name):
                host = self
            else:
                raise ReconfigurationError(
                    f"{self.name}: no component {name!r} to replace"
                )
            old = host.child(name)
            if isinstance(old, EventHandlerComponent):
                old.detach()
            if isinstance(old, EventSourceComponent):
                old.detach()
            if isinstance(old, (ForwardComponent, StateComponent)):
                old.detach()
            replaced = host.replace(name, replacement, transfer_state)
            if isinstance(replacement, (EventHandlerComponent, EventSourceComponent,
                                        ForwardComponent, StateComponent)):
                replacement.attach(self)
            if isinstance(replacement, ForwardComponent):
                self._forward = replacement
            if isinstance(replacement, StateComponent):
                self._state = replacement
            return replaced

    def remove_component(self, name: str) -> Component:
        with self.lock:
            host = self.control if self.control.has_child(name) else self
            old = host.child(name)
            if isinstance(old, (EventHandlerComponent, EventSourceComponent,
                                ForwardComponent, StateComponent)):
                old.detach()
            if old is self._forward:
                self._forward = None
            if old is self._state:
                self._state = None
            return host.remove(name)

    # -- message convenience -------------------------------------------------------

    def send_message(
        self,
        out_event: str,
        message: Message,
        link_dst: int = BROADCAST,
        piggyback: Optional[List[Message]] = None,
    ) -> int:
        """Emit an outgoing message event (routed down to the System CF)."""
        meta: Dict[str, Any] = {}
        if link_dst != BROADCAST:
            meta["link_dst"] = link_dst
        if piggyback:
            meta["piggyback"] = piggyback
        return self.emit(out_event, payload=message, meta=meta or None)

    # -- identity helpers ----------------------------------------------------------

    @property
    def local_address(self) -> int:
        if self.deployment is None:
            raise ReconfigurationError(f"{self.name}: not deployed")
        return self.deployment.node.node_id

    def sys_state(self) -> Any:
        """Direct call to the System CF's S element (ISysState)."""
        return self.direct("ISysState")
