"""The top-level MANETKit CF — one deployment per node.

"MANETKit is an OpenCom CF that supports the development, deployment and
dynamic reconfiguration of ad-hoc routing protocols" (paper section 4.1).
A deployment comprises the Framework Manager CF, the singleton System CF,
and any number of ManetProtocol instances stacked above it (Fig 2).

The deployment enforces coarse integrity rules of the kind the paper
sketches — "we might use this mechanism to ensure that only one instance of
a reactive routing protocol exists in a given MANETKit deployment"
(section 4.2) — via :attr:`ManetProtocol.protocol_class`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.concurrency.models import make_model
from repro.core.framework_manager import FrameworkManager
from repro.core.manet_protocol import ManetProtocol
from repro.core.reconfig import ReconfigurationManager
from repro.core.system_cf import SystemCF
from repro.core.unit import CFSUnit
from repro.errors import IntegrityError, ReconfigurationError
from repro.events.types import EventOntology
from repro.events.types import ontology as default_ontology
from repro.opencom.framework import ComponentFramework, Mutation
from repro.opencom.kernel import OpenComKernel
from repro.sim.node import SimNode
from repro.utils.timers import TimerService

#: Builders for dynamically deployable protocols, keyed by protocol name.
#: Populated by :mod:`repro.protocols` at import time and extensible by
#: users (the analog of loading a protocol implementation into the kernel).
PROTOCOL_REGISTRY: Dict[str, Callable[..., ManetProtocol]] = {}


def register_protocol(name: str, builder: Callable[..., ManetProtocol]) -> None:
    """Register a protocol builder for :meth:`ManetKit.load_protocol`."""
    PROTOCOL_REGISTRY[name] = builder


def _deployment_integrity(cf: ComponentFramework, mutation: Mutation) -> None:
    """Only one reactive routing protocol per deployment (section 4.2)."""
    if mutation.kind != "insert" or not isinstance(mutation.component, ManetProtocol):
        return
    if getattr(mutation.component, "protocol_class", "service") != "reactive":
        return
    for child in cf.children():
        if (
            isinstance(child, ManetProtocol)
            and getattr(child, "protocol_class", "service") == "reactive"
        ):
            raise IntegrityError(
                f"deployment already runs reactive protocol {child.name!r}; "
                f"refusing to deploy {mutation.component.name!r}"
            )


class ManetKit(ComponentFramework):
    """One node's MANETKit deployment."""

    def __init__(
        self,
        node: SimNode,
        ontology: Optional[EventOntology] = None,
        concurrency: str = "single-threaded",
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(f"manetkit@{node.node_id}")
        self.node = node
        #: Observability context shared with the simulation substrate (the
        #: node carries it); ``None`` for bare nodes — every consumer
        #: treats that as "not instrumented".
        self.obs = getattr(node, "obs", None)
        self.ontology = ontology if ontology is not None else default_ontology
        #: ``True`` once :meth:`crash` has run; a crashed kit is dead and
        #: must be replaced by a fresh deployment on restart.
        self.crashed = False
        self._concurrency = concurrency
        #: Deployment recipe — ``(protocol name, kwargs)`` in load order —
        #: so a node restart can rebuild the same protocol stack from
        #: scratch (fresh state, exactly like a daemon coming back up).
        self._recipe: List[tuple] = []
        self.register_integrity_rule(_deployment_integrity)
        # Per-node jitter RNG so co-located nodes do not fire in lockstep.
        timer_seed = seed if seed is not None else node.node_id
        self.timers = TimerService(node.scheduler, seed=timer_seed)
        self.kernel = OpenComKernel()
        self.manager = FrameworkManager(self.ontology)
        if self.obs is not None:
            # Pull-style publication of the dispatch-index counters — the
            # hot path pays nothing, snapshots see the current values.
            self.obs.registry.register_collector(self._collect_dispatch_metrics)
        self.insert(self.manager)
        self.system = SystemCF(node, self.timers, self.ontology)
        self.system.deployment = self
        self.insert(self.system)
        self.manager.register_unit(self.system)
        self.reconfig = ReconfigurationManager(self)
        if concurrency != "single-threaded":
            self.set_concurrency(concurrency)
        self.start()

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.node.scheduler.now

    # -- metrics -----------------------------------------------------------

    def _collect_dispatch_metrics(self) -> Dict[str, float]:
        node_id = self.node.node_id
        return {
            f"dispatch.index_hits{{node={node_id}}}": float(self.manager.index_hits),
            f"dispatch.index_misses{{node={node_id}}}": float(self.manager.index_misses),
        }

    # -- protocol deployment ----------------------------------------------------

    def deploy(self, protocol: ManetProtocol) -> ManetProtocol:
        """Dynamically deploy a protocol instance onto this node."""
        if self.manager.unit(protocol.name) is not None:
            raise ReconfigurationError(
                f"a unit named {protocol.name!r} is already deployed"
            )
        protocol.deployment = self
        self.manager.register_unit(protocol)
        try:
            protocol.on_install(self)
            self.insert(protocol)  # starts the protocol (kit is started)
        except Exception:
            self.manager.unregister_unit(protocol)
            protocol.deployment = None
            raise
        # Record in the rebuild recipe so crash/restart resurrects the
        # stack a node is *currently* running — including protocols that
        # arrived via a live switch, not load_protocol.  Registered-name
        # entries only: an unregistered name cannot be rebuilt.
        if protocol.name in PROTOCOL_REGISTRY:
            self._recipe.append((protocol.name, {}))
        self.system.emit("PROTOCOL_STARTED", payload={"protocol": protocol.name})
        return protocol

    def load_protocol(self, name: str, **kwargs: Any) -> ManetProtocol:
        """Instantiate a registered protocol by name and deploy it."""
        try:
            builder = PROTOCOL_REGISTRY[name]
        except KeyError:
            raise ReconfigurationError(
                f"no protocol {name!r} registered "
                f"(available: {sorted(PROTOCOL_REGISTRY)})"
            ) from None
        protocol = self.deploy(builder(self.ontology, **kwargs))
        if self._recipe and self._recipe[-1] == (name, {}):
            self._recipe[-1] = (name, dict(kwargs))
        else:
            self._recipe.append((name, dict(kwargs)))
        return protocol

    def undeploy(self, name: str) -> ManetProtocol:
        """Stop and remove a deployed protocol."""
        unit = self.manager.unit(name)
        if not isinstance(unit, ManetProtocol):
            raise ReconfigurationError(f"no deployed protocol named {name!r}")
        unit.on_uninstall(self)
        self.manager.unregister_unit(unit)
        self.remove(name)
        unit.deployment = None
        for entry in self._recipe:
            if entry[0] == name:
                self._recipe.remove(entry)
                break
        self.system.emit("PROTOCOL_STOPPED", payload={"protocol": name})
        return unit

    def protocol(self, name: str) -> ManetProtocol:
        unit = self.manager.unit(name)
        if not isinstance(unit, ManetProtocol):
            raise ReconfigurationError(f"no deployed protocol named {name!r}")
        return unit

    def protocols(self) -> List[ManetProtocol]:
        return [u for u in self.manager.units() if isinstance(u, ManetProtocol)]

    def units(self) -> List[CFSUnit]:
        return self.manager.units()

    # -- concurrency -----------------------------------------------------------------

    def set_concurrency(self, model: "str | ConcurrencyModel", **kwargs: Any) -> None:
        """Select the deployment-wide concurrency model.

        "To select either of the single-threaded or thread-per-message
        model it is only necessary to ask the System CF to use one or other
        model, and the selected model is applied throughout the MANETKit
        instance" (section 4.4).
        """
        if isinstance(model, str):
            model = make_model(model, **kwargs)
        self.manager.set_model(model)

    def use_dedicated_thread(self, protocol_name: str, enabled: bool = True) -> None:
        """Opt a single protocol into thread-per-ManetProtocol."""
        self.manager.set_dedicated_thread(self.protocol(protocol_name), enabled)

    def drain(self, timeout: float = 10.0) -> bool:
        return self.manager.drain(timeout)

    # -- lookups --------------------------------------------------------------------------

    def find_interface(self, iface_type: str, exclude: Optional[CFSUnit] = None) -> Any:
        """Locate an interface by type across the deployment's units."""
        for unit in self.manager.units():
            if unit is exclude:
                continue
            target = unit.find_local_interface(iface_type)
            if target is not None:
                return target
        raise LookupError(
            f"no unit in {self.name} provides an interface of type {iface_type!r}"
        )

    @property
    def context(self):
        """The context concentrator facade (section 4.5)."""
        return self.manager.concentrator

    # -- teardown ----------------------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop every protocol and release concurrency resources."""
        for protocol in list(self.protocols()):
            self.undeploy(protocol.name)
        self.manager.shutdown()
        self.stop()

    # -- crash / restart lifecycle (fault injection) ------------------------------------------

    def deployment_recipe(self) -> List[tuple]:
        """``(protocol name, kwargs)`` pairs needed to rebuild this stack."""
        return [(name, dict(kwargs)) for name, kwargs in self._recipe]

    def crash(self) -> None:
        """Abrupt node failure.

        Unlike :meth:`shutdown`, nothing is graceful: no ``on_uninstall``
        hooks run, no goodbye control traffic is sent, and no
        ``PROTOCOL_STOPPED`` events fire.  Every timer the deployment armed
        is cancelled, concurrency resources are released, the node's radio
        detaches and its kernel routing table is flushed — the state a real
        device is in the instant it loses power.  The kit object is dead
        afterwards; a restart builds a fresh deployment (see
        :meth:`rebuild`).
        """
        if self.crashed:
            return
        self.crashed = True
        obs = self.obs
        if obs is not None and obs.tracer is not None and obs.tracer.enabled:
            obs.tracer.event(
                "kit.crash", node=self.node.node_id,
                protocols=[p.name for p in self.protocols()],
            )
        self.timers.cancel_all()
        self.manager.shutdown()
        self.node.power_off()
        self.stop()

    def rebuild(self) -> "ManetKit":
        """Fresh deployment for a restarted node (same stack, wiped state).

        The node must have been powered back on (see
        :meth:`repro.sim.node.SimNode.power_on`) before calling this.
        """
        kit = ManetKit(
            self.node, ontology=self.ontology, concurrency=self._concurrency
        )
        for name, kwargs in self.deployment_recipe():
            kit.load_protocol(name, **kwargs)
        return kit
