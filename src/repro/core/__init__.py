"""MANETKit core (paper section 4).

The framework proper: the top-level MANETKit CF
(:mod:`repro.core.manetkit`), the Framework Manager that derives the
stacking topology from event tuples (:mod:`repro.core.framework_manager`),
the System CF abstracting OS-level functionality
(:mod:`repro.core.system_cf`), the generic ManetProtocol CF and its
ManetControl sub-CF (:mod:`repro.core.manet_protocol`), the Neighbour
Detection CF (:mod:`repro.core.neighbour_detection`), context monitoring
(:mod:`repro.core.context`) and reconfiguration enactment
(:mod:`repro.core.reconfig`).
"""

from repro.core.unit import CFSUnit
from repro.core.framework_manager import FrameworkManager
from repro.core.system_cf import (
    NetlinkComponent,
    NetworkDriver,
    PowerStatusComponent,
    SystemCF,
)
from repro.core.manet_protocol import (
    Configurator,
    EventHandlerComponent,
    EventSourceComponent,
    ForwardComponent,
    ManetControl,
    ManetProtocol,
    StateComponent,
)
from repro.core.neighbour_detection import NeighbourDetectionCF
from repro.core.context import ContextConcentrator
from repro.core.reconfig import ReconfigurationManager
from repro.core.manetkit import ManetKit
from repro.core.policy import PolicyEngine, Rule
from repro.core.coordination import ReconfigCoordinatorCF, deploy_coordinator

__all__ = [
    "CFSUnit",
    "FrameworkManager",
    "SystemCF",
    "NetworkDriver",
    "PowerStatusComponent",
    "NetlinkComponent",
    "ManetProtocol",
    "ManetControl",
    "EventHandlerComponent",
    "EventSourceComponent",
    "ForwardComponent",
    "StateComponent",
    "Configurator",
    "NeighbourDetectionCF",
    "ContextConcentrator",
    "ReconfigurationManager",
    "ManetKit",
    "PolicyEngine",
    "Rule",
    "ReconfigCoordinatorCF",
    "deploy_coordinator",
]
