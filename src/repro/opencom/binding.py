"""First-class bindings between receptacles and interfaces.

Bindings are created and destroyed by the kernel (or by an architecture
meta-model acting on a component framework).  Making them first-class
objects — rather than bare references — is what lets the reflective layer
enumerate, inspect and atomically rewire a running composition.
"""

from __future__ import annotations

from repro.errors import BindingError
from repro.opencom.component import Interface, Receptacle


class Binding:
    """A live connection from a receptacle to a compatible interface."""

    __slots__ = ("receptacle", "interface", "alive")

    def __init__(self, receptacle: Receptacle, interface: Interface) -> None:
        if receptacle.iface_type != interface.iface_type:
            raise BindingError(
                f"type mismatch binding {receptacle.owner.name}.{receptacle.name}"
                f" ({receptacle.iface_type}) to {interface.provider.name}."
                f"{interface.name} ({interface.iface_type})"
            )
        if receptacle.bindings and not receptacle.multiple:
            raise BindingError(
                f"receptacle {receptacle.owner.name}.{receptacle.name} is "
                "single-valued and already bound"
            )
        if any(b.interface is interface for b in receptacle.bindings):
            raise BindingError(
                f"receptacle {receptacle.owner.name}.{receptacle.name} is "
                f"already bound to {interface.provider.name}.{interface.name}"
            )
        self.receptacle = receptacle
        self.interface = interface
        self.alive = True
        receptacle.bindings.append(self)

    def destroy(self) -> None:
        """Disconnect (idempotent)."""
        if not self.alive:
            return
        self.alive = False
        try:
            self.receptacle.bindings.remove(self)
        except ValueError:  # pragma: no cover - defensive
            pass

    def __repr__(self) -> str:
        state = "live" if self.alive else "dead"
        return (
            f"<Binding {self.receptacle.owner.name}.{self.receptacle.name} -> "
            f"{self.interface.provider.name}.{self.interface.name} [{state}]>"
        )
