"""General-purpose quiescence for complex reconfigurations.

"For very complex reconfigurations (e.g. involving transactional changes
across multiple ManetProtocol instances), we can fall back on OpenCom's
general-purpose 'quiescence' mechanism" (paper section 4.5, citing Pissias &
Coulson [25]).

The idea: to mutate a set of component frameworks atomically, first drive
each of them to *quiescence* — no thread inside, no new thread admitted —
then apply the change set, then release.  Our reproduction implements this
as ordered acquisition of every involved CF's critical-section lock (a
deadlock-free total order by object id), plus a transactional apply/rollback
protocol over a list of mutation closures.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.errors import QuiescenceError
from repro.opencom.framework import ComponentFramework

#: A reconfiguration step: (apply, rollback).  ``rollback`` must undo
#: ``apply``; it is only invoked if a later step fails.
TransactionStep = Tuple[Callable[[], None], Callable[[], None]]


class QuiescenceManager:
    """Drives sets of CFs to a safe state and applies transactions there."""

    def __init__(self, frameworks: Sequence[ComponentFramework]) -> None:
        if not frameworks:
            raise QuiescenceError("no frameworks given to quiesce")
        # Total lock order prevents deadlock between concurrent managers.
        self._frameworks = sorted(set(frameworks), key=id)
        self._held = False

    # -- context manager -------------------------------------------------

    def __enter__(self) -> "QuiescenceManager":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def acquire(self) -> None:
        """Block until every framework is quiescent (locks held)."""
        if self._held:
            raise QuiescenceError("quiescence already held")
        acquired: List[ComponentFramework] = []
        try:
            for framework in self._frameworks:
                framework.lock.acquire()
                acquired.append(framework)
        except BaseException:  # pragma: no cover - defensive
            for framework in reversed(acquired):
                framework.lock.release()
            raise
        self._held = True

    def release(self) -> None:
        if not self._held:
            return
        for framework in reversed(self._frameworks):
            framework.lock.release()
        self._held = False

    @property
    def quiescent(self) -> bool:
        return self._held

    # -- transactional apply ----------------------------------------------

    def run_transaction(self, steps: Sequence[TransactionStep]) -> None:
        """Apply ``steps`` atomically across the quiesced frameworks.

        If any step raises, previously applied steps are rolled back in
        reverse order and the original error is re-raised wrapped in
        :class:`~repro.errors.QuiescenceError`.
        """
        if not self._held:
            raise QuiescenceError(
                "run_transaction requires quiescence to be held first"
            )
        applied: List[TransactionStep] = []
        try:
            for step in steps:
                apply, _rollback = step
                apply()
                applied.append(step)
        except Exception as exc:
            for _apply, rollback in reversed(applied):
                rollback()
            raise QuiescenceError(
                f"transaction failed and was rolled back: {exc}"
            ) from exc
