"""Components, interfaces and receptacles.

An OpenCom component exposes *interfaces* (services it provides) and
*receptacles* (services it requires).  A receptacle is connected to a
compatible interface by a :class:`~repro.opencom.binding.Binding`; the
component then calls through the receptacle as if it held the provider
directly.  Interface compatibility is by *interface type name* — a string
such as ``"IForward"`` — mirroring OpenCom's language-independent typing.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.errors import (
    InterfaceNotFound,
    LifecycleError,
    ReceptacleNotFound,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.opencom.binding import Binding


class Interface:
    """A named, typed service access point provided by a component.

    ``target`` is the Python object implementing the service (frequently
    the component itself).  Calls made through a bound receptacle are
    forwarded to ``target``.
    """

    __slots__ = ("name", "iface_type", "provider", "target")

    def __init__(
        self, name: str, iface_type: str, provider: "Component", target: Any
    ) -> None:
        self.name = name
        self.iface_type = iface_type
        self.provider = provider
        self.target = target

    def __repr__(self) -> str:
        return f"<Interface {self.name}:{self.iface_type} of {self.provider.name}>"


class Receptacle:
    """A named, typed dependency declared by a component.

    ``multiple=True`` receptacles ("multi-receptacles") may hold several
    simultaneous bindings — the event framework uses these for broadcast
    event propagation, where one provider fans out to many consumers.
    """

    __slots__ = ("name", "iface_type", "owner", "multiple", "bindings")

    def __init__(
        self,
        name: str,
        iface_type: str,
        owner: "Component",
        multiple: bool = False,
    ) -> None:
        self.name = name
        self.iface_type = iface_type
        self.owner = owner
        self.multiple = multiple
        self.bindings: List["Binding"] = []

    # -- call-through helpers ----------------------------------------------

    @property
    def connected(self) -> bool:
        return bool(self.bindings)

    def provider(self) -> Any:
        """Return the single bound target, or raise if unbound."""
        if not self.bindings:
            raise ReceptacleNotFound(
                f"receptacle {self.owner.name}.{self.name} is not bound"
            )
        return self.bindings[0].interface.target

    def providers(self) -> List[Any]:
        """Return every bound target (multi-receptacles)."""
        return [binding.interface.target for binding in self.bindings]

    def call(self, method: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke ``method`` on the single bound provider."""
        return getattr(self.provider(), method)(*args, **kwargs)

    def __repr__(self) -> str:
        return (
            f"<Receptacle {self.name}:{self.iface_type} of {self.owner.name} "
            f"({len(self.bindings)} bound)>"
        )


class Component:
    """Base class for all OpenCom components.

    Lifecycle: ``CREATED`` → :meth:`start` → ``STARTED`` → :meth:`stop` →
    ``STOPPED`` (restartable) → :meth:`destroy` → ``DESTROYED``.  Subclasses
    override the ``on_*`` hooks rather than the lifecycle methods
    themselves, so state bookkeeping stays in one place.
    """

    CREATED = "created"
    STARTED = "started"
    STOPPED = "stopped"
    DESTROYED = "destroyed"

    def __init__(self, name: str) -> None:
        self.name = name
        self.lifecycle = Component.CREATED
        self._interfaces: Dict[str, Interface] = {}
        self._receptacles: Dict[str, Receptacle] = {}
        #: set by ComponentFramework when the component is plugged in
        self.parent: Optional["Component"] = None

    # -- declaration --------------------------------------------------------

    def provide_interface(
        self, name: str, iface_type: str, target: Optional[Any] = None
    ) -> Interface:
        """Declare a provided interface; ``target`` defaults to ``self``."""
        iface = Interface(name, iface_type, self, target if target is not None else self)
        self._interfaces[name] = iface
        return iface

    def add_receptacle(
        self, name: str, iface_type: str, multiple: bool = False
    ) -> Receptacle:
        """Declare a required interface."""
        recep = Receptacle(name, iface_type, self, multiple=multiple)
        self._receptacles[name] = recep
        return recep

    # -- lookup ---------------------------------------------------------------

    def interface(self, name: str) -> Interface:
        try:
            return self._interfaces[name]
        except KeyError:
            raise InterfaceNotFound(
                f"component {self.name!r} has no interface {name!r} "
                f"(has: {sorted(self._interfaces)})"
            ) from None

    def receptacle(self, name: str) -> Receptacle:
        try:
            return self._receptacles[name]
        except KeyError:
            raise ReceptacleNotFound(
                f"component {self.name!r} has no receptacle {name!r} "
                f"(has: {sorted(self._receptacles)})"
            ) from None

    def interfaces(self) -> List[Interface]:
        return list(self._interfaces.values())

    def receptacles(self) -> List[Receptacle]:
        return list(self._receptacles.values())

    def find_interface_by_type(self, iface_type: str) -> Optional[Interface]:
        """First provided interface of the given type, if any.

        This is the dynamic-discovery operation that OpenCom's interface
        meta-model supports; direct calls between CFS units "typically
        benefit from [it] to dynamically discover interfaces at runtime"
        (paper section 4.2, footnote 1).
        """
        for iface in self._interfaces.values():
            if iface.iface_type == iface_type:
                return iface
        return None

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        if self.lifecycle == Component.DESTROYED:
            raise LifecycleError(f"cannot start destroyed component {self.name!r}")
        if self.lifecycle == Component.STARTED:
            return
        self.lifecycle = Component.STARTED
        self.on_start()

    def stop(self) -> None:
        if self.lifecycle != Component.STARTED:
            return
        self.lifecycle = Component.STOPPED
        self.on_stop()

    def destroy(self) -> None:
        if self.lifecycle == Component.STARTED:
            self.stop()
        self.lifecycle = Component.DESTROYED
        self.on_destroy()

    # -- subclass hooks ---------------------------------------------------------

    def on_start(self) -> None:
        """Hook invoked when the component transitions to STARTED."""

    def on_stop(self) -> None:
        """Hook invoked when the component transitions to STOPPED."""

    def on_destroy(self) -> None:
        """Hook invoked when the component is destroyed."""

    # -- state transfer (dynamic reconfiguration support) -----------------------

    def get_state(self) -> Dict[str, Any]:
        """Export transferable state for component replacement.

        The CFS pattern encourages factoring protocol state into distinct S
        components (paper section 4.5); components that carry state override
        this pair so a replacement can take over mid-flight.
        """
        return {}

    def set_state(self, state: Dict[str, Any]) -> None:
        """Import state previously produced by :meth:`get_state`."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} [{self.lifecycle}]>"
