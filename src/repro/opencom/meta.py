"""Reflective meta-models.

OpenCom "employs (i) an interface meta-model to provide runtime information
on the interfaces and receptacles supported by a component; and (ii) an
architecture meta-model that offers a generic API through which the
interconnections in a composed set of components can be inspected and
reconfigured" (paper section 3).

The meta-models are deliberately thin adapters over the underlying objects:
they exist so that *generic* tooling (the Framework Manager, the
reconfiguration engine, the analysis code) can manipulate arbitrary
compositions without knowing concrete component types.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.opencom.binding import Binding
from repro.opencom.component import Component
from repro.opencom.framework import ComponentFramework


class InterfaceMetaModel:
    """Runtime inspection of one component's interaction points."""

    def __init__(self, component: Component) -> None:
        self.component = component

    def interface_descriptions(self) -> List[Dict[str, str]]:
        return [
            {"name": i.name, "type": i.iface_type, "provider": i.provider.name}
            for i in self.component.interfaces()
        ]

    def receptacle_descriptions(self) -> List[Dict[str, object]]:
        return [
            {
                "name": r.name,
                "type": r.iface_type,
                "multiple": r.multiple,
                "bound": len(r.bindings),
            }
            for r in self.component.receptacles()
        ]

    def provides(self, iface_type: str) -> bool:
        return self.component.find_interface_by_type(iface_type) is not None

    def requires(self, iface_type: str) -> bool:
        return any(
            r.iface_type == iface_type for r in self.component.receptacles()
        )


class ArchitectureMetaModel:
    """Generic inspect/reconfigure API over a component framework.

    All mutating operations funnel through the CF itself so that integrity
    rules and the critical section always apply — reflection never offers a
    back door around the CF's self-policing.
    """

    def __init__(self, framework: ComponentFramework) -> None:
        self.framework = framework

    # -- inspection ---------------------------------------------------------

    def components(self) -> List[Component]:
        return self.framework.children()

    def component_names(self) -> List[str]:
        return self.framework.child_names()

    def bindings(self) -> List[Binding]:
        return self.framework.internal_bindings()

    def graph(self) -> Dict[str, List[str]]:
        """Adjacency mapping: child name -> names its receptacles point at."""
        adjacency: Dict[str, List[str]] = {
            name: [] for name in self.framework.child_names()
        }
        for binding in self.framework.internal_bindings():
            src = binding.receptacle.owner.name
            dst = binding.interface.provider.name
            adjacency.setdefault(src, []).append(dst)
        return adjacency

    def find(self, name: str) -> Optional[Component]:
        return self.framework.find_child(name)

    # -- reconfiguration ------------------------------------------------------

    def insert(self, component: Component) -> Component:
        return self.framework.insert(component)

    def remove(self, name: str) -> Component:
        return self.framework.remove(name)

    def replace(
        self, name: str, replacement: Component, transfer_state: bool = True
    ) -> Component:
        return self.framework.replace(name, replacement, transfer_state)

    def connect(
        self,
        source_name: str,
        receptacle_name: str,
        provider_name: str,
        interface_name: Optional[str] = None,
    ) -> Binding:
        return self.framework.connect(
            self.framework.child(source_name),
            receptacle_name,
            self.framework.child(provider_name),
            interface_name,
        )

    def disconnect(self, binding: Binding) -> None:
        self.framework.disconnect(binding)
