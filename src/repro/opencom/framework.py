"""Component frameworks (CFs).

"Component frameworks are domain tailored composite components that accept
'plug-in' components that modify or augment the CF's behaviour. [...]
Crucially, CFs actively maintain their integrity to avoid 'illegal'
configurations of plug-ins — attempts to insert and manipulate plug-ins are
policed by sets of integrity rules registered with the CF.  As CFs are
themselves components, they can easily be nested" (paper section 3).

A :class:`ComponentFramework` therefore:

* is a :class:`~repro.opencom.component.Component` (nestable, has its own
  interfaces/receptacles, participates in lifecycle);
* contains named child components and the internal bindings between them;
* polices every structural mutation with registered
  :class:`IntegrityRule` callables, raising
  :class:`~repro.errors.IntegrityError` and leaving the CF unchanged when a
  rule vetoes;
* owns a reentrant *critical-section* lock — the mechanism that makes
  event handling atomic per ManetProtocol and reconfiguration safe
  (paper sections 4.4 and 4.5);
* exports an architecture reflective meta-model through which plug-ins are
  inserted and manipulated (``ICFMeta`` in the paper's figures).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import BindingError, IntegrityError
from repro.opencom.binding import Binding
from repro.opencom.component import Component


@dataclass(frozen=True)
class Mutation:
    """Description of a structural change, handed to integrity rules."""

    kind: str  # "insert" | "remove" | "replace" | "bind" | "unbind"
    component: Optional[Component] = None
    old_component: Optional[Component] = None
    binding: Optional[Binding] = None


#: An integrity rule inspects a proposed mutation against the CF and raises
#: :class:`~repro.errors.IntegrityError` to veto it.
IntegrityRule = Callable[["ComponentFramework", Mutation], None]


class ComponentFramework(Component):
    """A composite component with policed plug-in structure."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._children: Dict[str, Component] = {}
        self._internal_bindings: List[Binding] = []
        self._rules: List[IntegrityRule] = []
        # The per-CF critical section.  RLock so that a handler running
        # inside the CF can re-enter (e.g. emit an event that loops back).
        self._lock = threading.RLock()
        self.provide_interface("ICFMeta", "ICFMeta", target=self)

    # -- critical section ---------------------------------------------------

    @property
    def lock(self) -> threading.RLock:
        return self._lock

    def __enter__(self) -> "ComponentFramework":
        self._lock.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._lock.release()

    # -- integrity rules ----------------------------------------------------

    def register_integrity_rule(self, rule: IntegrityRule) -> None:
        self._rules.append(rule)

    def _police(self, mutation: Mutation) -> None:
        for rule in self._rules:
            rule(self, mutation)

    # -- plug-in management --------------------------------------------------

    def insert(self, component: Component) -> Component:
        """Plug ``component`` in (policed, under the critical section)."""
        with self._lock:
            if component.name in self._children:
                raise IntegrityError(
                    f"{self.name}: a child named {component.name!r} already exists"
                )
            self._police(Mutation("insert", component=component))
            self._children[component.name] = component
            component.parent = self
            if self.lifecycle == Component.STARTED:
                component.start()
            return component

    def remove(self, name: str) -> Component:
        """Unplug the child called ``name``, severing its internal bindings."""
        with self._lock:
            component = self.child(name)
            self._police(Mutation("remove", component=component))
            for binding in list(self._internal_bindings):
                if (
                    binding.receptacle.owner is component
                    or binding.interface.provider is component
                ):
                    self.disconnect(binding)
            del self._children[name]
            component.parent = None
            component.stop()
            return component

    def replace(
        self,
        name: str,
        replacement: Component,
        transfer_state: bool = True,
    ) -> Component:
        """Swap the child called ``name`` for ``replacement``.

        Bindings that touched the old child are re-created against the
        replacement (matched by receptacle/interface type), and — by
        default — exported state is carried over, which is the standard
        state-management story for CFS-pattern reconfiguration (paper
        section 4.5).  Returns the old component.
        """
        with self._lock:
            old = self.child(name)
            self._police(
                Mutation("replace", component=replacement, old_component=old)
            )
            if transfer_state:
                replacement.set_state(old.get_state())
            # Record how the old child was wired before severing.  A
            # binding with both endpoints on the old child (self-binding)
            # must be re-created entirely on the replacement — treating it
            # as inbound or outbound would resurrect the dead component's
            # receptacle or interface.
            inbound = [
                (b.receptacle, b.interface.iface_type)
                for b in self._internal_bindings
                if b.interface.provider is old and b.receptacle.owner is not old
            ]
            outbound = [
                (b.receptacle.name, b.interface)
                for b in self._internal_bindings
                if b.receptacle.owner is old and b.interface.provider is not old
            ]
            self_links = [
                (b.receptacle.name, b.interface.iface_type)
                for b in self._internal_bindings
                if b.receptacle.owner is old and b.interface.provider is old
            ]
            for binding in list(self._internal_bindings):
                if (
                    binding.receptacle.owner is old
                    or binding.interface.provider is old
                ):
                    self.disconnect(binding)
            del self._children[old.name]
            old.parent = None
            old.stop()

            self._children[replacement.name] = replacement
            replacement.parent = self
            # Rewire: consumers of the old child now consume the new one.
            for recep, iface_type in inbound:
                iface = replacement.find_interface_by_type(iface_type)
                if iface is None:
                    raise BindingError(
                        f"replacement {replacement.name!r} provides no interface "
                        f"of type {iface_type!r} needed to rewire "
                        f"{recep.owner.name}.{recep.name}"
                    )
                self._connect_objects(recep, iface)
            # Rewire: dependencies the old child held are re-established
            # on the replacement where it declares matching receptacles.
            for recep_name, iface in outbound:
                try:
                    new_recep = replacement.receptacle(recep_name)
                except Exception:
                    continue
                if new_recep.iface_type == iface.iface_type:
                    self._connect_objects(new_recep, iface)
            # Self-bindings come back as self-bindings on the replacement.
            for recep_name, iface_type in self_links:
                try:
                    new_recep = replacement.receptacle(recep_name)
                except Exception:
                    continue
                new_iface = replacement.find_interface_by_type(iface_type)
                if new_iface is not None and new_recep.iface_type == iface_type:
                    self._connect_objects(new_recep, new_iface)
            if self.lifecycle == Component.STARTED:
                replacement.start()
            return old

    # -- child access ---------------------------------------------------------

    def child(self, name: str) -> Component:
        try:
            return self._children[name]
        except KeyError:
            raise IntegrityError(
                f"{self.name}: no child named {name!r} (has: {sorted(self._children)})"
            ) from None

    def has_child(self, name: str) -> bool:
        return name in self._children

    def children(self) -> List[Component]:
        return list(self._children.values())

    def child_names(self) -> List[str]:
        return sorted(self._children)

    def find_child(self, name: str) -> Optional[Component]:
        return self._children.get(name)

    # -- internal composition ---------------------------------------------------

    def connect(
        self,
        source: Component,
        receptacle_name: str,
        provider: Component,
        interface_name: Optional[str] = None,
    ) -> Binding:
        """Bind two children of this CF (policed)."""
        recep = source.receptacle(receptacle_name)
        if interface_name is not None:
            iface = provider.interface(interface_name)
        else:
            found = provider.find_interface_by_type(recep.iface_type)
            if found is None:
                raise BindingError(
                    f"{provider.name!r} provides no interface of type "
                    f"{recep.iface_type!r} required by {source.name}.{receptacle_name}"
                )
            iface = found
        return self._connect_objects(recep, iface)

    def _connect_objects(self, recep, iface) -> Binding:
        with self._lock:
            binding = Binding(recep, iface)
            try:
                self._police(Mutation("bind", binding=binding))
            except IntegrityError:
                binding.destroy()
                raise
            self._internal_bindings.append(binding)
            return binding

    def disconnect(self, binding: Binding) -> None:
        with self._lock:
            self._police(Mutation("unbind", binding=binding))
            binding.destroy()
            if binding in self._internal_bindings:
                self._internal_bindings.remove(binding)

    def internal_bindings(self) -> List[Binding]:
        return list(self._internal_bindings)

    # -- lifecycle cascade --------------------------------------------------------

    def on_start(self) -> None:
        for component in self._children.values():
            component.start()

    def on_stop(self) -> None:
        for component in self._children.values():
            component.stop()

    def on_destroy(self) -> None:
        for binding in list(self._internal_bindings):
            binding.destroy()
        self._internal_bindings.clear()
        for component in list(self._children.values()):
            component.destroy()
        self._children.clear()
