"""The OpenCom runtime kernel.

"OpenCom is a run-time component model that uses a small runtime kernel to
support the dynamic loading, unloading, instantiation/destruction,
composition/decomposition of lightweight programming language independent
software components" (paper section 3).

In this Python reproduction, *loading* a component means registering its
class under a string name in the kernel's registry (the analog of loading a
shared object and registering its factory); *instantiation* creates live
component instances; and *composition* creates bindings between receptacles
and interfaces.  The kernel can itself be "unloaded" after a deployment has
been configured (paper section 6.2, footnote 3) — the registry is dropped
and only live instances remain, which the footprint benchmark exercises.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import (
    BindingError,
    ComponentAlreadyRegistered,
    ComponentNotRegistered,
    LifecycleError,
)
from repro.opencom.binding import Binding
from repro.opencom.component import Component

ComponentFactory = Callable[..., Component]


class OpenComKernel:
    """Registry + lifecycle + composition manager for components."""

    def __init__(self) -> None:
        self._registry: Dict[str, ComponentFactory] = {}
        self._instances: List[Component] = []
        self._bindings: List[Binding] = []
        self._unloaded = False

    # -- dynamic loading / unloading -------------------------------------

    def load(self, name: str, factory: ComponentFactory) -> None:
        """Register a component class/factory under ``name``."""
        self._check_alive()
        if name in self._registry:
            raise ComponentAlreadyRegistered(f"component class {name!r} already loaded")
        self._registry[name] = factory

    def unload(self, name: str) -> None:
        """Remove a component class from the registry.

        Live instances are unaffected — unloading only prevents *new*
        instantiations, exactly as dropping a shared object would.
        """
        self._check_alive()
        if name not in self._registry:
            raise ComponentNotRegistered(f"component class {name!r} is not loaded")
        del self._registry[name]

    def is_loaded(self, name: str) -> bool:
        return name in self._registry

    def loaded_names(self) -> List[str]:
        return sorted(self._registry)

    # -- instantiation / destruction --------------------------------------

    def instantiate(self, name: str, *args: Any, **kwargs: Any) -> Component:
        """Create an instance of a loaded component class."""
        self._check_alive()
        try:
            factory = self._registry[name]
        except KeyError:
            raise ComponentNotRegistered(
                f"component class {name!r} is not loaded (loaded: {self.loaded_names()})"
            ) from None
        instance = factory(*args, **kwargs)
        self._instances.append(instance)
        return instance

    def adopt(self, instance: Component) -> Component:
        """Track an externally created instance (used by nested CFs)."""
        if instance not in self._instances:
            self._instances.append(instance)
        return instance

    def destroy_instance(self, instance: Component) -> None:
        """Destroy an instance, severing all bindings that touch it."""
        for binding in list(self._bindings):
            if (
                binding.receptacle.owner is instance
                or binding.interface.provider is instance
            ):
                self.unbind(binding)
        if instance in self._instances:
            self._instances.remove(instance)
        instance.destroy()

    def instances(self) -> List[Component]:
        return list(self._instances)

    # -- composition / decomposition --------------------------------------

    def bind(
        self,
        source: Component,
        receptacle_name: str,
        provider: Component,
        interface_name: Optional[str] = None,
    ) -> Binding:
        """Bind ``source``'s receptacle to an interface on ``provider``.

        When ``interface_name`` is omitted, the provider is searched for an
        interface whose *type* matches the receptacle's required type.
        """
        recep = source.receptacle(receptacle_name)
        if interface_name is not None:
            iface = provider.interface(interface_name)
        else:
            found = provider.find_interface_by_type(recep.iface_type)
            if found is None:
                raise BindingError(
                    f"{provider.name!r} provides no interface of type "
                    f"{recep.iface_type!r} required by {source.name}.{receptacle_name}"
                )
            iface = found
        binding = Binding(recep, iface)
        self._bindings.append(binding)
        return binding

    def unbind(self, binding: Binding) -> None:
        binding.destroy()
        if binding in self._bindings:
            self._bindings.remove(binding)

    def bindings(self) -> List[Binding]:
        return list(self._bindings)

    def bindings_of(self, component: Component) -> List[Binding]:
        """Every binding in which ``component`` participates."""
        return [
            b
            for b in self._bindings
            if b.receptacle.owner is component or b.interface.provider is component
        ]

    # -- kernel unload (footprint optimisation) ----------------------------

    def unload_kernel(self) -> None:
        """Drop the registry to free memory once configuration is final.

        After this, no further loads or instantiations are possible, but
        existing instances and bindings keep running (paper section 6.2,
        footnote 3).
        """
        self._registry.clear()
        self._unloaded = True

    @property
    def kernel_unloaded(self) -> bool:
        return self._unloaded

    def _check_alive(self) -> None:
        if self._unloaded:
            raise LifecycleError(
                "the OpenCom kernel has been unloaded; no further dynamic "
                "loading or instantiation is possible"
            )
