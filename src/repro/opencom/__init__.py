"""OpenCom: a reflective runtime component model (paper section 3).

This package is a from-scratch Python reproduction of the OpenCom component
model [Coulson et al., ACM TOCS 2008] that MANETKit is built on:

* a small runtime **kernel** supporting dynamic loading/unloading,
  instantiation/destruction and composition/decomposition of lightweight
  components (:mod:`repro.opencom.kernel`);
* **components** with *interfaces* (provided) and *receptacles* (required)
  describing their points of interaction (:mod:`repro.opencom.component`);
* first-class **bindings** between receptacles and interfaces
  (:mod:`repro.opencom.binding`);
* **reflective meta-models**: an *interface meta-model* for runtime
  inspection of a component's interaction points and an *architecture
  meta-model* exposing a generic API for inspecting and reconfiguring a
  composition (:mod:`repro.opencom.meta`);
* **component frameworks** (CFs): domain-tailored composite components that
  accept plug-ins and actively police their own structural integrity via
  registered integrity rules (:mod:`repro.opencom.framework`);
* a general-purpose **quiescence** mechanism for complex, transactional
  reconfigurations (:mod:`repro.opencom.quiescence`).
"""

from repro.opencom.component import Component, Interface, Receptacle
from repro.opencom.binding import Binding
from repro.opencom.kernel import OpenComKernel
from repro.opencom.meta import ArchitectureMetaModel, InterfaceMetaModel
from repro.opencom.framework import ComponentFramework, IntegrityRule
from repro.opencom.quiescence import QuiescenceManager

__all__ = [
    "Component",
    "Interface",
    "Receptacle",
    "Binding",
    "OpenComKernel",
    "InterfaceMetaModel",
    "ArchitectureMetaModel",
    "ComponentFramework",
    "IntegrityRule",
    "QuiescenceManager",
]
