"""``repro.obs`` — the cross-cutting observability subsystem.

The paper's entire evaluation (Tables 1-3: message-processing time,
route-establishment delay, footprint) is an observability exercise; this
package is the structured substrate for it:

* :mod:`repro.obs.metrics` — a metrics registry: counters, gauges and
  histograms with percentile summaries, labelled per node / per protocol /
  per message type;
* :mod:`repro.obs.trace` — a low-overhead structured trace recorder: a
  span/event API stamped with both simulated time and wall-clock time,
  hooked into the event scheduler, the wireless medium, the kernel-table
  hook points, protocol message dispatch and the reconfiguration machinery;
* :mod:`repro.obs.export` — exporters: JSONL trace dump and a human
  pretty-printer (wired into ``repro.tools.scenario --trace``);
* :mod:`repro.obs.causal` — offline causal analysis: rebuilds the
  provenance DAG from a recorded trace (every transmission carries a
  ``prov`` id, every reaction a ``cause`` link), extracts critical paths
  for route establishment, answers why/why-not route queries and exports
  Chrome trace-event JSON (see ``repro.tools.traceview``);
* :mod:`repro.obs.bench` — the ``BENCH_<name>.json`` emitter that turns
  benchmark runs into machine-readable results (median/p95/p99, bytes,
  frames) which ``tools/bench_check.py`` gates in CI;
* :mod:`repro.obs.summary` — cross-run merging: reduces many scenario
  result dicts into one percentile summary (the campaign runner's merged
  report);
* :mod:`repro.obs.merge` — cross-shard merging: interleaves per-shard
  traces (disjoint span/prov id bands keep causal links intact) and sums
  per-shard metrics snapshots, so ``traceview``, ``CausalGraph`` and the
  BENCH exporters work unchanged on sharded runs
  (:mod:`repro.sim.sharded`).

Tracing is **off by default** and costs a single attribute check on the
hot paths when disabled; enable it per simulation with
:meth:`repro.sim.Simulation.enable_tracing`.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs.merge import merge_metrics_snapshots, merge_profiles, merge_trace_events
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import Profiler
from repro.obs.summary import summarize_runs
from repro.obs.trace import TraceEvent, TraceRecorder


class Observability:
    """One deployment's observability context: registry, tracer, profiler.

    The tracer and profiler are ``None`` until :meth:`enable_tracing` /
    :meth:`enable_profiling` are called, so instrumented hot paths pay
    only an attribute load and a ``None`` check when both are disabled.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self.registry = MetricsRegistry()
        self.tracer: Optional[TraceRecorder] = None
        self.profiler: Optional[Profiler] = None

    # -- tracing lifecycle --------------------------------------------------

    def enable_tracing(self, capacity: int = 200_000) -> TraceRecorder:
        """Install (or re-enable) the trace recorder and return it."""
        if self.tracer is None:
            self.tracer = TraceRecorder(self.clock, capacity=capacity)
        self.tracer.enabled = True
        return self.tracer

    def disable_tracing(self) -> None:
        """Stop recording; already-captured events are kept."""
        if self.tracer is not None:
            self.tracer.enabled = False

    @property
    def tracing(self) -> bool:
        return self.tracer is not None and self.tracer.enabled

    # -- profiling lifecycle ------------------------------------------------

    def enable_profiling(self) -> Profiler:
        """Install (or return) the cost-attribution profiler."""
        if self.profiler is None:
            self.profiler = Profiler()
        return self.profiler

    def disable_profiling(self) -> None:
        """Detach the profiler; captured aggregates stay on the instance."""
        self.profiler = None

    @property
    def profiling(self) -> bool:
        return self.profiler is not None

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> dict:
        """Serializable view of every metric plus trace bookkeeping."""
        out = {"metrics": self.registry.snapshot()}
        if self.tracer is not None:
            out["trace"] = {
                "events": len(self.tracer.events),
                "dropped": self.tracer.dropped,
                "enabled": self.tracer.enabled,
            }
        if self.profiler is not None:
            out["profile"] = {
                "stacks": len(self.profiler.stats),
                "events": sum(stat[0] for stat in self.profiler.stats.values()),
            }
        return out


__all__ = [
    "Observability",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Profiler",
    "TraceRecorder",
    "TraceEvent",
    "merge_metrics_snapshots",
    "merge_profiles",
    "merge_trace_events",
    "summarize_runs",
]
