"""The ``BENCH_<name>.json`` emitter and the regression comparator.

Every benchmark run is reduced to a flat map of named metrics::

    {
      "schema": 1,
      "name": "smoke",
      "metrics": {
        "dymo.route_establishment.sim_ms": {
          "value": 27.3, "unit": "ms", "direction": "lower",
          "summary": {"count": 5, "median": 27.3, "p95": 29.0, "p99": 29.4}
        },
        "dymo.control_bytes": {"value": 4120, "unit": "B", "direction": "lower"},
        "table1.mkit_olsr.msg_wall_ms": {"value": 0.11, "unit": "ms",
                                          "direction": "info"}
      }
    }

``direction`` drives the CI gate (``tools/bench_check.py``):

* ``lower`` / ``higher`` — gated: a >tolerance move in the bad direction
  vs the checked-in baseline fails the build.  Use these for quantities
  that are deterministic across machines (simulated-time delays, frame
  and byte counts, event counts).
* ``info`` — recorded and uploaded but never gated.  Use for raw
  wall-clock timings, which are machine-dependent; gate their *ratios*
  instead if a relative claim matters.
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.obs.metrics import Histogram

PathLike = Union[str, pathlib.Path]

SCHEMA_VERSION = 1

DIRECTIONS = ("lower", "higher", "info")


@dataclass
class BenchMetric:
    """One scalar result plus an optional distribution summary."""

    value: float
    unit: str = ""
    direction: str = "lower"
    summary: Optional[Dict[str, float]] = None

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise ValueError(f"direction must be one of {DIRECTIONS}, got {self.direction!r}")


def metric_from_samples(
    samples: Sequence[float], unit: str = "", direction: str = "lower"
) -> BenchMetric:
    """Summarise raw samples; the gated ``value`` is the median."""
    hist = Histogram()
    for sample in samples:
        hist.observe(float(sample))
    summary = hist.summary()
    return BenchMetric(
        value=summary["median"], unit=unit, direction=direction, summary=summary
    )


def _metric_to_dict(metric: Union[BenchMetric, float, int]) -> Dict[str, object]:
    if not isinstance(metric, BenchMetric):
        metric = BenchMetric(value=float(metric))
    out: Dict[str, object] = {
        "value": _finite(metric.value),
        "unit": metric.unit,
        "direction": metric.direction,
    }
    if metric.summary is not None:
        out["summary"] = {k: _finite(v) for k, v in sorted(metric.summary.items())}
    return out


def _finite(value: float) -> Optional[float]:
    if value is None or (isinstance(value, float) and not math.isfinite(value)):
        return None
    return value


def write_bench(
    name: str,
    metrics: Dict[str, Union[BenchMetric, float, int]],
    out_dir: PathLike,
    meta: Optional[Dict[str, object]] = None,
) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` under ``out_dir``; returns the path."""
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": SCHEMA_VERSION,
        "name": name,
        "meta": meta or {},
        "metrics": {
            key: _metric_to_dict(metric) for key, metric in sorted(metrics.items())
        },
    }
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_bench(path: PathLike) -> Dict[str, object]:
    try:
        data = json.loads(pathlib.Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from exc
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"{path}: unsupported bench schema {data.get('schema')!r}")
    if not isinstance(data.get("metrics"), dict):
        raise ValueError(f"{path}: missing metrics map")
    return data


def discover_bench_files(directory: PathLike) -> List[pathlib.Path]:
    return sorted(pathlib.Path(directory).glob("BENCH_*.json"))


# -- comparison (the CI gate) -------------------------------------------------

@dataclass
class Comparison:
    """Outcome of comparing one metric against the baseline."""

    bench: str
    metric: str
    baseline: Optional[float]
    current: Optional[float]
    direction: str
    change: float = 0.0      # signed fraction; positive = worse
    status: str = "ok"       # ok | regressed | improved | info | missing | new

    def describe(self) -> str:
        def fmt(value: Optional[float]) -> str:
            return "-" if value is None else f"{value:.6g}"

        pct = f"{self.change * 100:+.1f}%" if self.status not in ("missing", "new") else ""
        return (
            f"{self.status:9} {self.bench}:{self.metric} "
            f"base={fmt(self.baseline)} now={fmt(self.current)} {pct}".rstrip()
        )


def compare_metric(
    bench: str,
    name: str,
    baseline: Dict[str, object],
    current: Optional[Dict[str, object]],
    tolerance: float,
) -> Comparison:
    direction = str(baseline.get("direction", "lower"))
    base_value = baseline.get("value")
    if current is None:
        return Comparison(bench, name, base_value, None, direction, status="missing")
    cur_value = current.get("value")
    comparison = Comparison(bench, name, base_value, cur_value, direction)
    if direction == "info" or base_value is None or cur_value is None:
        comparison.status = "info"
        return comparison
    if base_value == 0:
        # Degenerate baseline: any nonzero move in the bad direction regresses.
        worse = cur_value > 0 if direction == "lower" else cur_value < 0
        comparison.change = 0.0 if cur_value == base_value else math.inf
        comparison.status = "regressed" if worse else "ok"
        return comparison
    signed = (cur_value - base_value) / abs(base_value)
    if direction == "higher":
        signed = -signed
    comparison.change = signed
    if signed > tolerance:
        comparison.status = "regressed"
    elif signed < -tolerance:
        comparison.status = "improved"
    return comparison


def compare_dirs(
    baseline_dir: PathLike,
    results_dir: PathLike,
    tolerance: float = 0.25,
) -> List[Comparison]:
    """Compare every baseline BENCH file against the freshly emitted ones.

    Metrics present only in the current results are reported as ``new``
    (never failing); baseline metrics with no current counterpart are
    ``missing`` (failing — the benchmark silently stopped reporting).
    Whole BENCH files present only in the results — a benchmark that has
    not been baselined yet — also surface as ``new``, so a fresh rung
    is visible in the report instead of silently ignored.
    """
    comparisons: List[Comparison] = []
    results_dir = pathlib.Path(results_dir)
    baseline_names = set()
    for base_path in discover_bench_files(baseline_dir):
        baseline_names.add(base_path.name)
        base = load_bench(base_path)
        bench_name = str(base["name"])
        current_path = results_dir / base_path.name
        current_metrics: Dict[str, Dict[str, object]] = {}
        if current_path.exists():
            current_metrics = load_bench(current_path)["metrics"]  # type: ignore[assignment]
        for metric_name, base_metric in sorted(base["metrics"].items()):  # type: ignore[union-attr]
            comparisons.append(
                compare_metric(
                    bench_name,
                    metric_name,
                    base_metric,
                    current_metrics.get(metric_name),
                    tolerance,
                )
            )
        for metric_name, cur_metric in sorted(current_metrics.items()):
            if metric_name not in base["metrics"]:  # type: ignore[operator]
                comparisons.append(
                    Comparison(
                        bench_name,
                        metric_name,
                        None,
                        cur_metric.get("value"),  # type: ignore[union-attr]
                        str(cur_metric.get("direction", "lower")),
                        status="new",
                    )
                )
    for result_path in discover_bench_files(results_dir):
        if result_path.name in baseline_names:
            continue
        current = load_bench(result_path)
        bench_name = str(current["name"])
        for metric_name, cur_metric in sorted(current["metrics"].items()):  # type: ignore[union-attr]
            comparisons.append(
                Comparison(
                    bench_name,
                    metric_name,
                    None,
                    cur_metric.get("value"),
                    str(cur_metric.get("direction", "lower")),
                    status="new",
                )
            )
    return comparisons


def failures(comparisons: Iterable[Comparison]) -> List[Comparison]:
    return [c for c in comparisons if c.status in ("regressed", "missing")]


__all__ = [
    "SCHEMA_VERSION",
    "BenchMetric",
    "metric_from_samples",
    "write_bench",
    "load_bench",
    "discover_bench_files",
    "Comparison",
    "compare_metric",
    "compare_dirs",
    "failures",
]
