"""Structured trace recorder: spans and events on two clocks.

Every record carries both the **simulated** timestamp (the discrete-event
clock that makes runs reproducible) and a **wall-clock** timestamp (the
CPU cost the paper's Table 1 measures).  Determinism contract: the
:meth:`TraceRecorder.signature` of a run excludes every wall-clock
quantity, so two identically seeded runs yield identical signatures even
though their wall timings differ.

The recorder is deliberately cheap: when ``enabled`` is ``False`` both
:meth:`event` and :meth:`span` return immediately, and instrumented code
in the scheduler/medium/data plane only reaches the recorder behind a
``tracer is not None`` check.

Causal provenance
-----------------

Every packet put on the air while tracing is enabled is assigned a
**provenance id** (:meth:`TraceRecorder.new_provenance`), recorded as a
``prov`` attribute on its transmit/deliver records.  While a delivered
frame (or an originated data packet) is being processed, the recorder's
:attr:`TraceRecorder.cause` holds that provenance id, and every record
appended inside the context automatically gains a ``cause`` attribute —
so a forwarded TC, a rebroadcast RREQ, a kernel route install or a
buffered-packet re-injection all carry a link back to the exact
transmission that provoked them.  The full cross-node chain is then
reconstructible offline as a DAG (:mod:`repro.obs.causal`).  Provenance
ids come from a per-recorder counter driven solely by the deterministic
event order, so identically seeded runs mint identical ids; with tracing
disabled no id is ever minted and the hot paths never touch the counter.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


@dataclass
class TraceEvent:
    """One trace record.

    ``kind`` is ``"event"`` (instantaneous), ``"begin"`` or ``"end"``
    (span edges).  ``span`` identifies the span a ``begin``/``end`` pair
    belongs to; for plain events it is the id of the *enclosing* span (0 =
    top level).  ``dt_sim``/``dt_wall`` are set on ``end`` records only.
    """

    seq: int
    kind: str
    name: str
    t_sim: float
    t_wall: float
    span: int
    parent: int
    attrs: Dict[str, Any] = field(default_factory=dict)
    dt_sim: float = 0.0
    dt_wall: float = 0.0


class _SpanContext:
    """Context manager returned by :meth:`TraceRecorder.span`."""

    __slots__ = ("recorder", "name", "attrs", "span_id", "t_sim", "t_wall")

    def __init__(self, recorder: "TraceRecorder", name: str, attrs: Dict[str, Any]):
        self.recorder = recorder
        self.name = name
        self.attrs = attrs
        self.span_id = 0

    def __enter__(self) -> "_SpanContext":
        rec = self.recorder
        if not rec.enabled:
            return self
        self.span_id = rec._begin(self.name, self.attrs)
        self.t_sim = rec.clock()
        self.t_wall = rec.wall()
        return self

    def __exit__(self, *exc_info: object) -> None:
        rec = self.recorder
        if self.span_id:
            rec._end(
                self.name,
                self.span_id,
                rec.clock() - self.t_sim,
                rec.wall() - self.t_wall,
                self.attrs,
            )


class TraceRecorder:
    """Bounded in-memory recorder for spans and events."""

    def __init__(
        self,
        clock: Callable[[], float],
        capacity: int = 200_000,
        wall: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.clock = clock
        self.wall = wall
        self.capacity = capacity
        self.enabled = True
        self.events: List[TraceEvent] = []
        self.dropped = 0
        self._next_seq = 0
        self._next_span = 0
        self._stack: List[int] = []
        #: Causal context: the provenance id of the transmission currently
        #: being processed (0 = none).  Instrumented delivery paths set and
        #: restore it; every record appended while it is non-zero gains a
        #: ``cause`` attribute.
        self.cause = 0
        self._next_prov = 0
        #: Offset applied to every minted span and provenance id.  A
        #: sharded run gives each shard a disjoint id band (shard 0 keeps
        #: base 0, so the single-process path mints the same ids as
        #: always) and merged traces keep ``prov``/``cause``/``span``
        #: links unambiguous across shards.
        self.id_base = 0

    def set_id_base(self, base: int) -> None:
        """Reserve a disjoint span/provenance id band for this recorder."""
        if self._next_span or self._next_prov:
            raise ValueError("id base must be set before any id is minted")
        self.id_base = int(base)

    # -- recording ----------------------------------------------------------

    def event(self, name: str, **attrs: Any) -> None:
        """Record an instantaneous event under the current span."""
        if not self.enabled:
            return
        self._append("event", name, 0, attrs)

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a (possibly nested) span; use as a context manager."""
        return _SpanContext(self, name, attrs)

    def new_provenance(self) -> int:
        """Mint the next provenance id (deterministic: pure counter)."""
        self._next_prov += 1
        return self.id_base + self._next_prov

    @property
    def provenance_count(self) -> int:
        """How many provenance ids have been minted so far."""
        return self._next_prov

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0
        self._next_seq = 0
        self._next_span = 0
        self._stack.clear()
        self.cause = 0
        self._next_prov = 0

    # -- span internals -----------------------------------------------------

    def _begin(self, name: str, attrs: Dict[str, Any]) -> int:
        self._next_span += 1
        span_id = self.id_base + self._next_span
        self._append("begin", name, span_id, attrs)
        self._stack.append(span_id)
        return span_id

    def _end(
        self,
        name: str,
        span_id: int,
        dt_sim: float,
        dt_wall: float,
        attrs: Dict[str, Any],
    ) -> None:
        if self._stack and self._stack[-1] == span_id:
            self._stack.pop()
        event = self._append("end", name, span_id, attrs)
        if event is not None:
            event.dt_sim = dt_sim
            event.dt_wall = dt_wall

    def _append(
        self, kind: str, name: str, span_id: int, attrs: Dict[str, Any]
    ) -> Optional[TraceEvent]:
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return None
        if self.cause and "cause" not in attrs:
            attrs["cause"] = self.cause
        parent = self._stack[-1] if self._stack else 0
        event = TraceEvent(
            seq=self._next_seq,
            kind=kind,
            name=name,
            t_sim=self.clock(),
            t_wall=self.wall(),
            span=span_id if span_id else parent,
            parent=parent,
            attrs=attrs,
        )
        self._next_seq += 1
        self.events.append(event)
        return event

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def filter(self, name: Optional[str] = None, kind: Optional[str] = None) -> List[TraceEvent]:
        return [
            event
            for event in self.events
            if (name is None or event.name == name)
            and (kind is None or event.kind == kind)
        ]

    def counts_by_name(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.name] = counts.get(event.name, 0) + 1
        return counts

    def span_durations(self, name: str) -> List[float]:
        """Wall-clock durations of every completed span called ``name``."""
        return [e.dt_wall for e in self.events if e.kind == "end" and e.name == name]

    def signature(self) -> Tuple[Tuple[Any, ...], ...]:
        """Deterministic fingerprint of the run (wall-clock excluded).

        Two identically seeded simulations must produce identical
        signatures; attribute dicts are canonicalised by sorted key.
        """
        return tuple(
            (
                event.seq,
                event.kind,
                event.name,
                round(event.t_sim, 9),
                event.span,
                event.parent,
                tuple(sorted((k, repr(v)) for k, v in event.attrs.items())),
                round(event.dt_sim, 9),
            )
            for event in self.events
        )


def callback_name(callback: Callable[..., Any]) -> str:
    """Stable human-readable name for a scheduled callback."""
    wrapped = getattr(callback, "__wrapped__", None)
    if wrapped is not None:
        callback = wrapped
    for attr in ("__qualname__", "__name__"):
        name = getattr(callback, attr, None)
        if name:
            return name
    # Bound methods / partials / callables: fall back to the class name.
    return type(callback).__name__


__all__ = ["TraceEvent", "TraceRecorder", "callback_name"]
