"""Deterministic cost-attribution profiler (``repro.obs.profile``).

The trace recorder (:mod:`repro.obs.trace`) answers *what happened*;
this module answers *where the wall-clock time went*.  A
:class:`Profiler` keeps an explicit frame stack that the instrumented
seams push/pop around the event hot path:

* ``sched.dispatch:<callback>`` — every scheduler dispatch
  (:meth:`repro.utils.scheduler.Scheduler.step`);
* ``unit.process:<unit>/<event-kind>`` — CF unit event processing
  (:meth:`repro.core.unit.CFSUnit.process_event`);
* ``medium.broadcast:<kind>`` / ``medium.unicast:<kind>`` /
  ``medium.deliver:<kind>`` — the wireless medium, ideal and
  PHY-model paths alike;
* ``node.rx:<receiver>`` — deferred ``processing_delay`` hops (the
  ``_run_with_cause`` mechanism), so work attributes to the receiver
  that asked for the delay, not to the scheduler trampoline;
* ``fm.route:<event-kind>`` — Framework Manager dispatch-index hops
  (event counts, attached as a route observer);
* ``route_calc.install`` + ``route_calc.<mode>`` — route recomputation
  and which install mode (full/incremental/fallback/noop) ran;
* ``fault.apply:<kind>`` and ``reconfig.<op>`` — fault injector steps
  and reconfiguration enactments.

Aggregation is *online*: per ``(phase, stack-path)`` the profiler keeps
an event count and the **self** wall time (time in the tip frame minus
time in its children), so memory is bounded by the number of distinct
stacks, not the number of events.  Counts are deterministic per seed
(one increment per frame entry, in event order); wall times are
machine-dependent and are zeroed by ``snapshot(deterministic=True)``.

Disabled cost is the contract of :mod:`repro.obs`: every seam guards
with ``profiler = X.profiler`` + ``is not None``, so a run without
profiling pays one attribute load and a ``None`` check per seam and
never enters this module (enforced by the zero-allocation guard in
``benchmarks/test_smoke_obs.py``).

Offline consumers (:mod:`repro.tools.profview`) render a snapshot as a
collapsed-stack flamegraph (``flamegraph.pl`` / speedscope compatible),
a top-N hot-spot table, or a Chrome trace-event view; sharded runs
merge per-shard snapshots with :func:`merge_profiles` (re-exported via
:mod:`repro.obs.merge`).
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

PROFILE_SCHEMA = 1

#: Pseudo-frame name for wall time inside a phase window that no pushed
#: frame accounts for (scheduler bookkeeping, queue scans, the driving
#: loop itself).  Reported explicitly so attribution is honest.
UNATTRIBUTED = "(unattributed)"

#: Phase label used in exports for frames recorded outside any
#: ``begin_phase``/``end_phase`` window.
DEFAULT_PHASE = "(all)"


def frame_name(label: str) -> str:
    """``"unit.process:olsr/TC"`` → ``"unit.process"``."""
    return label.split(":", 1)[0]


def frame_subsystem(label: str) -> str:
    """``"unit.process:olsr/TC"`` → ``"unit"``."""
    return label.split(":", 1)[0].split(".", 1)[0]


class _FrameContext:
    """Context-manager wrapper over push/pop for cold paths."""

    __slots__ = ("profiler", "name", "detail")

    def __init__(self, profiler: "Profiler", name: str, detail: str) -> None:
        self.profiler = profiler
        self.name = name
        self.detail = detail

    def __enter__(self) -> "_FrameContext":
        self.profiler.push2(self.name, self.detail)
        return self

    def __exit__(self, *exc: object) -> bool:
        self.profiler.pop()
        return False


class Profiler:
    """Hierarchical cost-attribution profiler with online aggregation.

    Hot paths use the paired :meth:`push2`/:meth:`pop` (or
    :meth:`push`/:meth:`pop`) methods; cold paths may prefer the
    :meth:`frame` context manager.  :meth:`count` attributes an event
    count with zero wall time under the current stack (used for
    per-mode attribution where the mode is only known after the work,
    e.g. ``route_calc.incremental``).
    """

    __slots__ = ("wall", "phase", "stats", "phase_wall", "_stack", "_phase_t0", "_labels")

    def __init__(self, wall: Optional[Callable[[], float]] = None) -> None:
        #: Wall-clock source; injectable for deterministic tests.
        self.wall: Callable[[], float] = wall if wall is not None else time.perf_counter
        #: Current phase label ("" until :meth:`begin_phase`).
        self.phase: str = ""
        #: ``(phase, stack-path) -> [count, self_wall_seconds]``.
        self.stats: Dict[Tuple[str, Tuple[str, ...]], List] = {}
        #: ``phase -> accumulated window wall seconds`` (the attribution
        #: denominator).
        self.phase_wall: Dict[str, float] = {}
        # Live frame stack: ``[label, t0, child_wall]`` per entry.
        self._stack: List[List] = []
        self._phase_t0: Optional[float] = None
        # Interned ``(name, detail) -> "name:detail"`` labels so hot
        # paths don't rebuild the composed string per event.
        self._labels: Dict[Tuple[str, str], str] = {}

    # -- phases ------------------------------------------------------------

    def begin_phase(self, name: str) -> None:
        """Open a measurement window; closes any window still open."""
        if self._phase_t0 is not None:
            self.end_phase()
        self.phase = name
        self._phase_t0 = self.wall()

    def end_phase(self) -> None:
        """Close the current window, accumulating its wall time."""
        t0 = self._phase_t0
        if t0 is None:
            return
        self._phase_t0 = None
        self.phase_wall[self.phase] = (
            self.phase_wall.get(self.phase, 0.0) + self.wall() - t0
        )

    # -- frame stack (hot path) -------------------------------------------

    def push(self, label: str) -> None:
        """Enter a frame with a pre-composed label."""
        self._stack.append([label, self.wall(), 0.0])

    def push2(self, name: str, detail: str) -> None:
        """Enter a frame labelled ``name:detail`` (label interned)."""
        key = (name, detail)
        label = self._labels.get(key)
        if label is None:
            label = name + ":" + detail if detail else name
            self._labels[key] = label
        self._stack.append([label, self.wall(), 0.0])

    def pop(self) -> None:
        """Leave the innermost frame, attributing its self time."""
        stack = self._stack
        entry = stack.pop()
        total = self.wall() - entry[1]
        if stack:
            stack[-1][2] += total
        key = (self.phase, tuple([frame[0] for frame in stack] + [entry[0]]))
        stat = self.stats.get(key)
        if stat is None:
            self.stats[key] = [1, total - entry[2]]
        else:
            stat[0] += 1
            stat[1] += total - entry[2]

    def count(self, name: str, detail: str = "", n: int = 1) -> None:
        """Attribute ``n`` events (zero wall) under the current stack."""
        key2 = (name, detail)
        label = self._labels.get(key2)
        if label is None:
            label = name + ":" + detail if detail else name
            self._labels[key2] = label
        key = (self.phase, tuple([frame[0] for frame in self._stack] + [label]))
        stat = self.stats.get(key)
        if stat is None:
            self.stats[key] = [n, 0.0]
        else:
            stat[0] += n

    def frame(self, name: str, detail: str = "") -> _FrameContext:
        """Context manager form of :meth:`push2`/:meth:`pop`."""
        return _FrameContext(self, name, detail)

    def route_observer(self, source_name: str, event: object, targets: Sequence[str]) -> None:
        """Framework-Manager route observer: counts dispatch-index hops.

        Attach with ``kit.manager.add_route_observer(profiler.route_observer)``;
        the observer list is empty when profiling is off, so the disabled
        path stays allocation-free.
        """
        etype = getattr(event, "etype", None)
        self.count("fm.route", getattr(etype, "name", str(etype)), len(targets) or 1)

    # -- snapshots ---------------------------------------------------------

    def snapshot(self, deterministic: bool = False) -> dict:
        """Serializable aggregate profile.

        ``deterministic=True`` zeroes every wall figure, leaving only
        the per-seed-stable event counts — the form embedded in
        scenario results and committed goldens.
        """
        stacks = []
        for (phase, path), stat in sorted(self.stats.items()):
            stacks.append(
                {
                    "phase": phase,
                    "stack": list(path),
                    "count": stat[0],
                    "wall_s": 0.0 if deterministic else stat[1],
                }
            )
        phases = {
            name: {"wall_s": 0.0 if deterministic else wall}
            for name, wall in sorted(self.phase_wall.items())
        }
        return {"schema": PROFILE_SCHEMA, "phases": phases, "stacks": stacks}

    def clear(self) -> None:
        """Drop all aggregates (open frames and phase survive)."""
        self.stats.clear()
        self.phase_wall.clear()


# -- offline views over snapshot dicts ----------------------------------------


def deterministic_profile(profile: dict) -> dict:
    """Copy of a snapshot with every wall figure zeroed.

    The post-hoc analogue of ``Profiler.snapshot(deterministic=True)``
    for snapshots that already left the profiler (e.g. per-shard
    reports), so library-path file outputs stay byte-reproducible.
    """
    return {
        "schema": profile.get("schema", PROFILE_SCHEMA),
        "phases": {
            name: {"wall_s": 0.0} for name in sorted(profile.get("phases", {}))
        },
        "stacks": [
            {
                "phase": entry.get("phase", ""),
                "stack": list(entry["stack"]),
                "count": int(entry["count"]),
                "wall_s": 0.0,
            }
            for entry in profile["stacks"]
        ],
    }


def write_profile(
    profile: dict,
    path: Union[str, pathlib.Path],
    deterministic: bool = False,
) -> pathlib.Path:
    """Write a snapshot as stable-ordered JSON; returns the path.

    ``deterministic=True`` zeroes wall figures first (see
    :func:`deterministic_profile`).
    """
    if deterministic:
        profile = deterministic_profile(profile)
    out = pathlib.Path(path)
    if out.parent != pathlib.Path("."):
        out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(profile, indent=2, sort_keys=True) + "\n")
    return out


def load_profile(path: Union[str, pathlib.Path]) -> dict:
    """Read and validate a snapshot written by :func:`write_profile`."""
    try:
        data = json.loads(pathlib.Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from exc
    return validate_profile(data)


def validate_profile(profile: dict) -> dict:
    """Raise ``ValueError`` unless ``profile`` is a schema-1 snapshot."""
    if not isinstance(profile, dict) or profile.get("schema") != PROFILE_SCHEMA:
        raise ValueError(
            f"not a profile snapshot (schema {profile.get('schema') if isinstance(profile, dict) else profile!r})"
        )
    if not isinstance(profile.get("stacks"), list):
        raise ValueError("profile snapshot missing 'stacks' list")
    return profile


def merge_profiles(profiles: Sequence[dict]) -> dict:
    """Merge per-shard (or per-run) snapshots into one.

    Counts and self-wall sum per ``(phase, stack)``; phase windows sum
    per phase.  The result is a normal snapshot, so every exporter and
    ``profview`` work unchanged on merged profiles.
    """
    phase_wall: Dict[str, float] = {}
    stats: Dict[Tuple[str, Tuple[str, ...]], List] = {}
    for profile in profiles:
        validate_profile(profile)
        for name, info in profile.get("phases", {}).items():
            phase_wall[name] = phase_wall.get(name, 0.0) + float(info.get("wall_s", 0.0))
        for entry in profile["stacks"]:
            key = (entry.get("phase", ""), tuple(entry["stack"]))
            stat = stats.get(key)
            if stat is None:
                stats[key] = [int(entry["count"]), float(entry.get("wall_s", 0.0))]
            else:
                stat[0] += int(entry["count"])
                stat[1] += float(entry.get("wall_s", 0.0))
    stacks = [
        {"phase": phase, "stack": list(path), "count": stat[0], "wall_s": stat[1]}
        for (phase, path), stat in sorted(stats.items())
    ]
    phases = {
        name: {"wall_s": wall} for name, wall in sorted(phase_wall.items())
    }
    return {"schema": PROFILE_SCHEMA, "phases": phases, "stacks": stacks}


def attribution(profile: dict) -> dict:
    """How much of the measured wall time the frames account for.

    ``total_wall_s`` is the sum of phase windows (falls back to the
    attributed sum when no windows were recorded, e.g. direct
    :class:`~repro.sim.network.Simulation` use without phases); the
    ``(unattributed)`` remainder is reported explicitly, never hidden.
    """
    attributed = sum(entry["wall_s"] for entry in profile["stacks"])
    windows = sum(info.get("wall_s", 0.0) for info in profile.get("phases", {}).values())
    total = windows if windows > 0.0 else attributed
    unattributed = max(0.0, total - attributed)
    return {
        "total_wall_s": total,
        "attributed_wall_s": attributed,
        "unattributed_wall_s": unattributed,
        "attributed_fraction": (attributed / total) if total > 0.0 else 1.0,
    }


def summary_counts(profile: dict) -> dict:
    """Deterministic roll-up embedded in scenario results.

    Only event counts (never wall figures), so same-spec runs produce
    identical results and campaign content-hash resume stays sound.
    """
    by_subsystem: Dict[str, int] = {}
    events = 0
    for entry in profile["stacks"]:
        count = int(entry["count"])
        sub = frame_subsystem(entry["stack"][-1])
        by_subsystem[sub] = by_subsystem.get(sub, 0) + count
        events += count
    return {
        "stacks": len(profile["stacks"]),
        "events": events,
        "by_subsystem": {k: by_subsystem[k] for k in sorted(by_subsystem)},
    }


def _weight_of(entry: dict, weight: str) -> float:
    if weight == "count":
        return float(entry["count"])
    return float(entry.get("wall_s", 0.0))


def pick_weight(profile: dict, weight: str = "auto") -> str:
    """Resolve ``auto`` to ``wall``, or ``count`` when walls are zeroed."""
    if weight != "auto":
        return weight
    attributed = sum(entry.get("wall_s", 0.0) for entry in profile["stacks"])
    return "wall" if attributed > 0.0 else "count"


def collapsed_stacks(profile: dict, weight: str = "wall") -> List[str]:
    """``flamegraph.pl`` / speedscope collapsed-stack lines.

    One line per distinct stack: ``phase;frame;frame VALUE`` with the
    value in integer microseconds (``weight="wall"``) or raw event
    counts (``weight="count"``).  With wall weighting, per-phase
    ``(unattributed)`` remainder lines keep the flamegraph honest about
    time outside any frame.
    """
    lines: List[str] = []
    attributed_per_phase: Dict[str, float] = {}
    for entry in profile["stacks"]:
        phase = entry.get("phase", "") or DEFAULT_PHASE
        value = _weight_of(entry, weight)
        attributed_per_phase[phase] = (
            attributed_per_phase.get(phase, 0.0) + entry.get("wall_s", 0.0)
        )
        if weight == "wall":
            rendered = int(round(value * 1e6))
        else:
            rendered = int(value)
        if rendered <= 0:
            continue
        lines.append(";".join([phase] + list(entry["stack"])) + f" {rendered}")
    if weight == "wall":
        for phase, info in sorted(profile.get("phases", {}).items()):
            remainder = info.get("wall_s", 0.0) - attributed_per_phase.get(
                phase or DEFAULT_PHASE, 0.0
            )
            remainder_us = int(round(remainder * 1e6))
            if remainder_us > 0:
                lines.append(f"{phase or DEFAULT_PHASE};{UNATTRIBUTED} {remainder_us}")
    return sorted(lines)


def top_frames(profile: dict, n: int = 15, weight: str = "wall") -> List[dict]:
    """Hot-spot table rows: per frame label, self/total weight + count.

    ``total`` counts each stack containing the frame once (recursion
    would double-count; the instrumented seams never recurse through
    the same label).  Rows sort by self weight descending.
    """
    self_w: Dict[str, float] = {}
    total_w: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    grand = 0.0
    for entry in profile["stacks"]:
        value = _weight_of(entry, weight)
        grand += value
        leaf = entry["stack"][-1]
        self_w[leaf] = self_w.get(leaf, 0.0) + value
        counts[leaf] = counts.get(leaf, 0) + int(entry["count"])
        for label in set(entry["stack"]):
            total_w[label] = total_w.get(label, 0.0) + value
    rows = []
    for label in total_w:
        self_value = self_w.get(label, 0.0)
        rows.append(
            {
                "frame": label,
                "self": self_value,
                "total": total_w[label],
                "count": counts.get(label, 0),
                "self_pct": (100.0 * self_value / grand) if grand > 0.0 else 0.0,
            }
        )
    rows.sort(key=lambda row: (-row["self"], -row["total"], row["frame"]))
    return rows[:n]


def render_top(profile: dict, n: int = 15, weight: str = "auto") -> str:
    """Human-readable top-N table plus the attribution line."""
    resolved = pick_weight(profile, weight)
    rows = top_frames(profile, n=n, weight=resolved)
    if resolved == "wall":
        header = f"{'self ms':>10}  {'total ms':>10}  {'self %':>6}  {'events':>10}  frame"
    else:
        header = f"{'self ev':>10}  {'total ev':>10}  {'self %':>6}  {'events':>10}  frame"
    lines = [header, "-" * len(header)]
    for row in rows:
        if resolved == "wall":
            self_col = f"{row['self'] * 1e3:10.3f}"
            total_col = f"{row['total'] * 1e3:10.3f}"
        else:
            self_col = f"{int(row['self']):10d}"
            total_col = f"{int(row['total']):10d}"
        lines.append(
            f"{self_col}  {total_col}  {row['self_pct']:6.2f}  {row['count']:10d}  {row['frame']}"
        )
    attrib = attribution(profile)
    lines.append(
        "attributed {:.1f}% of {:.3f}s measured wall ({}: {:.3f}s)".format(
            100.0 * attrib["attributed_fraction"],
            attrib["total_wall_s"],
            UNATTRIBUTED,
            attrib["unattributed_wall_s"],
        )
    )
    return "\n".join(lines)


def chrome_trace(profile: dict, weight: str = "wall") -> List[dict]:
    """Chrome trace-event JSON (``chrome://tracing`` / Perfetto).

    This is an *aggregate* view, not a timeline: each phase becomes one
    synthetic thread whose frames are laid out left-heavy by total
    weight, so relative widths — not positions — carry the meaning.
    Durations are integer microseconds (wall) or event counts.
    """

    def to_us(value: float) -> int:
        return int(round(value * 1e6)) if weight == "wall" else int(value)

    # Rebuild the call tree per phase from the flat stacks.
    trees: Dict[str, dict] = {}
    for entry in profile["stacks"]:
        phase = entry.get("phase", "") or DEFAULT_PHASE
        node = trees.setdefault(phase, {"children": {}, "self": 0.0, "count": 0})
        for label in entry["stack"]:
            node = node["children"].setdefault(
                label, {"children": {}, "self": 0.0, "count": 0}
            )
        node["self"] += _weight_of(entry, weight)
        node["count"] += int(entry["count"])

    def total_of(node: dict) -> float:
        return node["self"] + sum(total_of(child) for child in node["children"].values())

    events: List[dict] = []
    for tid, (phase, root) in enumerate(sorted(trees.items())):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": tid,
                "args": {"name": f"phase:{phase}"},
            }
        )

        def emit(node: dict, label: str, start: float, depth: int, tid: int = tid) -> None:
            dur = total_of(node)
            events.append(
                {
                    "ph": "X",
                    "name": label,
                    "cat": "profile",
                    "pid": 0,
                    "tid": tid,
                    "ts": to_us(start),
                    "dur": max(1, to_us(dur)),
                    "args": {"count": node["count"], "self": node["self"]},
                }
            )
            cursor = start
            children = sorted(
                node["children"].items(), key=lambda item: (-total_of(item[1]), item[0])
            )
            for child_label, child in children:
                emit(child, child_label, cursor, depth + 1, tid)
                cursor += total_of(child)

        window = profile.get("phases", {}).get(phase, {}).get("wall_s", 0.0)
        span = max(total_of(root), window if weight == "wall" else 0.0)
        events.append(
            {
                "ph": "X",
                "name": f"phase:{phase}",
                "cat": "profile",
                "pid": 0,
                "tid": tid,
                "ts": 0,
                "dur": max(1, to_us(span)),
                "args": {},
            }
        )
        cursor = 0.0
        for child_label, child in sorted(
            root["children"].items(), key=lambda item: (-total_of(item[1]), item[0])
        ):
            emit(child, child_label, cursor, 1)
            cursor += total_of(child)
    return events


__all__ = [
    "PROFILE_SCHEMA",
    "UNATTRIBUTED",
    "DEFAULT_PHASE",
    "Profiler",
    "frame_name",
    "frame_subsystem",
    "deterministic_profile",
    "write_profile",
    "load_profile",
    "validate_profile",
    "merge_profiles",
    "attribution",
    "summary_counts",
    "pick_weight",
    "collapsed_stacks",
    "top_frames",
    "render_top",
    "chrome_trace",
]
