"""Exporters: JSONL traces, metrics JSON and the human pretty-printer.

Formats
-------

**Trace JSONL** — one JSON object per line, one line per
:class:`~repro.obs.trace.TraceEvent`::

    {"seq": 0, "kind": "begin", "name": "reconfig.switch_protocol",
     "t_sim": 12.5, "t_wall": 0.0301, "span": 1, "parent": 0,
     "attrs": {"old": "olsr", "new": "dymo"}, "dt_sim": 0.0, "dt_wall": 0.0}

**Metrics JSON** — the output of
:meth:`repro.obs.metrics.MetricsRegistry.snapshot` with every ``nan``
replaced by ``null`` so the file is strictly valid JSON.

Round-trip guarantee: ``load_trace_jsonl(dump_trace_jsonl(...))`` yields
events whose :func:`trace_summary` equals that of the originals.
"""

from __future__ import annotations

import json
import math
import pathlib
import sys
import warnings
from typing import Any, Dict, Iterable, List, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceEvent, TraceRecorder

PathLike = Union[str, pathlib.Path]


def _nan_to_null(value: Any) -> Any:
    """Recursively replace NaN/inf floats so the output is strict JSON."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _nan_to_null(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_nan_to_null(v) for v in value]
    return value


# -- trace JSONL -------------------------------------------------------------

def trace_event_to_dict(event: TraceEvent, deterministic: bool = False) -> Dict[str, Any]:
    """Dict form of one event.

    With ``deterministic=True`` the wall-clock fields are zeroed so two
    runs of the same seeded scenario serialise byte-identically (the
    fault-injection replay contract); all simulated-time fields survive.
    """
    return {
        "seq": event.seq,
        "kind": event.kind,
        "name": event.name,
        "t_sim": event.t_sim,
        "t_wall": 0.0 if deterministic else event.t_wall,
        "span": event.span,
        "parent": event.parent,
        "attrs": _nan_to_null(event.attrs),
        "dt_sim": event.dt_sim,
        "dt_wall": 0.0 if deterministic else event.dt_wall,
    }


def trace_event_from_dict(data: Dict[str, Any]) -> TraceEvent:
    return TraceEvent(
        seq=int(data["seq"]),
        kind=str(data["kind"]),
        name=str(data["name"]),
        t_sim=float(data["t_sim"]),
        t_wall=float(data["t_wall"]),
        span=int(data["span"]),
        parent=int(data["parent"]),
        attrs=dict(data.get("attrs") or {}),
        dt_sim=float(data.get("dt_sim", 0.0)),
        dt_wall=float(data.get("dt_wall", 0.0)),
    )


def dump_trace_jsonl(
    events: Union[TraceRecorder, Iterable[TraceEvent]],
    path: PathLike,
    deterministic: bool = False,
) -> pathlib.Path:
    """Write one JSON object per trace event; returns the path written.

    ``deterministic=True`` drops wall-clock timings from the output so a
    seeded run's trace file is byte-identical across executions.

    Exporting a recorder that hit its capacity warns loudly: analysis of
    a truncated trace (causal chains especially) is silently incomplete
    otherwise.  Raise the recorder capacity (``--trace-limit`` in the
    scenario CLI) to capture the full run.
    """
    if isinstance(events, TraceRecorder) and events.dropped:
        message = (
            f"trace truncated: {events.dropped} records dropped at "
            f"capacity {events.capacity}; exported trace is incomplete "
            f"(raise the recorder capacity, e.g. --trace-limit)"
        )
        warnings.warn(message, RuntimeWarning, stacklevel=2)
        print(f"WARNING: {message}", file=sys.stderr)
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for event in events:
            handle.write(
                json.dumps(trace_event_to_dict(event, deterministic), sort_keys=True)
            )
            handle.write("\n")
    return path


def load_trace_jsonl(path: PathLike) -> List[TraceEvent]:
    events = []
    with pathlib.Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(trace_event_from_dict(json.loads(line)))
    return events


def trace_summary(events: Iterable[TraceEvent]) -> Dict[str, Any]:
    """Order-independent digest used to compare traces across a round-trip."""
    counts: Dict[str, int] = {}
    kinds: Dict[str, int] = {}
    t_max = 0.0
    spans = 0
    for event in events:
        counts[event.name] = counts.get(event.name, 0) + 1
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
        t_max = max(t_max, event.t_sim)
        if event.kind == "begin":
            spans += 1
    return {
        "events_by_name": dict(sorted(counts.items())),
        "events_by_kind": dict(sorted(kinds.items())),
        "span_count": spans,
        "t_sim_max": round(t_max, 9),
    }


# -- metrics JSON ------------------------------------------------------------

def dump_metrics_json(
    registry: MetricsRegistry, path: PathLike, deterministic: bool = False
) -> pathlib.Path:
    """Write a metrics snapshot as strict JSON.

    ``deterministic=True`` excludes wall-clock-measured metrics (see
    :meth:`MetricsRegistry.snapshot`) so seeded replays produce
    byte-identical files.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(
            _nan_to_null(registry.snapshot(deterministic=deterministic)),
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    return path


# -- pretty printer ----------------------------------------------------------

def format_timeline(
    events: Union[TraceRecorder, Iterable[TraceEvent]], limit: int = 50
) -> str:
    """Human-readable tail of a trace, indented by span depth."""
    if isinstance(events, TraceRecorder):
        dropped = events.dropped
        items = events.events
    else:
        dropped = 0
        items = list(events)
    depth: Dict[int, int] = {0: 0}
    lines: List[str] = []
    for event in items:
        level = depth.get(event.parent, 0)
        if event.kind == "begin":
            depth[event.span] = level + 1
        indent = "  " * level
        attrs = " ".join(f"{k}={v}" for k, v in event.attrs.items())
        marker = {"begin": "+", "end": "-", "event": "."}[event.kind]
        extra = f" ({event.dt_wall * 1000:.3f} ms)" if event.kind == "end" else ""
        lines.append(
            f"{event.t_sim:10.6f}s {marker} {indent}{event.name}"
            + (f" [{attrs}]" if attrs else "")
            + extra
        )
    if limit and len(lines) > limit:
        lines = [f"... ({len(lines) - limit} earlier records elided)"] + lines[-limit:]
    if dropped:
        lines.append(f"... ({dropped} records dropped at capacity)")
    return "\n".join(lines)


__all__ = [
    "dump_trace_jsonl",
    "load_trace_jsonl",
    "trace_summary",
    "dump_metrics_json",
    "format_timeline",
    "trace_event_to_dict",
    "trace_event_from_dict",
]
