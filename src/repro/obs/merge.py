"""Merge per-shard observability artifacts back into one view.

A sharded run (:mod:`repro.sim.sharded`) gives every worker its own
:class:`~repro.obs.trace.TraceRecorder` and
:class:`~repro.obs.metrics.MetricsRegistry`.  Shards mint span and
provenance ids in disjoint bands (``TraceRecorder.set_id_base``), so the
merge is purely structural:

* **traces** interleave by ``(t_sim, shard, seq)`` and are re-sequenced;
  every ``prov``/``cause``/``span`` link survives unchanged, which is
  what lets :class:`~repro.obs.causal.CausalGraph` (and ``traceview``)
  follow a packet across a partition cut exactly as it follows one
  across nodes.
* **metrics** sum counters/gauges/collected values, recompute the ratio
  metrics that must not be summed, and rebuild histogram summaries from
  the shards' raw samples.
* **profiles** (:func:`merge_profiles`, from :mod:`repro.obs.profile`)
  sum per-``(phase, stack)`` event counts and self-wall across shard
  id-bands, so one flamegraph covers the whole sharded run.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.metrics import _render_key  # noqa: PLC2701 - same package
from repro.obs.profile import merge_profiles
from repro.obs.trace import TraceEvent

#: Collected metrics that are ratios of two other collected metrics and
#: must be recomputed — not summed — when snapshots merge.
RATIO_METRICS: Dict[str, Tuple[str, str]] = {
    "net.delivery_ratio": ("net.data_delivered", "net.data_sent"),
}


def merge_trace_events(
    shard_events: Sequence[Sequence[TraceEvent]],
) -> List[TraceEvent]:
    """Interleave per-shard traces into one globally ordered trace.

    Events sort by ``(t_sim, shard index, original seq)`` — within a
    shard ``seq`` already increases with simulated time, so this is a
    stable merge — and are renumbered with a fresh global ``seq``.  Span
    and provenance ids are left untouched (disjoint per shard by
    construction).
    """
    keyed = [
        (event.t_sim, shard_index, event.seq, event)
        for shard_index, events in enumerate(shard_events)
        for event in events
    ]
    keyed.sort(key=lambda item: item[:3])
    merged: List[TraceEvent] = []
    for new_seq, (_, _, _, event) in enumerate(keyed):
        event.seq = new_seq
        merged.append(event)
    return merged


def registry_histogram_samples(
    registry: MetricsRegistry,
) -> Dict[str, List[float]]:
    """Raw sample lists of every histogram in ``registry``, by name."""
    return {
        _render_key(key): list(metric.samples)
        for key, metric in sorted(registry._histograms.items())
    }


def merge_metrics_snapshots(
    snapshots: Sequence[Dict[str, object]],
    histogram_samples: Optional[Sequence[Dict[str, List[float]]]] = None,
) -> Dict[str, object]:
    """Merge per-shard ``MetricsRegistry.snapshot()`` dicts.

    Counters, gauges and collected values are summed across shards
    (missing keys count as zero); :data:`RATIO_METRICS` are then
    recomputed from their merged numerator/denominator.  When
    ``histogram_samples`` (one dict per shard, from
    :func:`registry_histogram_samples`) is given, histogram summaries
    are rebuilt from the union of the raw samples; otherwise count/sum/
    min/max merge exactly and the percentile fields are NaN.
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    collected: Dict[str, float] = {}
    for snapshot in snapshots:
        for section, sink in (
            ("counters", counters), ("gauges", gauges), ("collected", collected)
        ):
            for name, value in (snapshot.get(section) or {}).items():
                sink[name] = sink.get(name, 0) + value
    for name, (numerator, denominator) in RATIO_METRICS.items():
        if name in collected:
            total = collected.get(denominator, 0.0)
            collected[name] = (
                collected.get(numerator, 0.0) / total if total else 1.0
            )

    histograms: Dict[str, Dict[str, float]] = {}
    if histogram_samples is not None:
        pooled: Dict[str, Histogram] = {}
        for shard in histogram_samples:
            for name, samples in shard.items():
                hist = pooled.get(name)
                if hist is None:
                    hist = pooled[name] = Histogram()
                for sample in samples:
                    hist.observe(sample)
        histograms = {
            name: hist.summary() for name, hist in sorted(pooled.items())
        }
    else:
        nan = float("nan")
        for snapshot in snapshots:
            for name, summary in (snapshot.get("histograms") or {}).items():
                merged = histograms.get(name)
                if merged is None:
                    histograms[name] = dict(summary)
                    continue
                merged["count"] += summary["count"]
                merged["sum"] += summary["sum"]
                for key, pick in (("min", min), ("max", max)):
                    a, b = merged[key], summary[key]
                    if math.isnan(a):
                        merged[key] = b
                    elif not math.isnan(b):
                        merged[key] = pick(a, b)
                merged["mean"] = (
                    merged["sum"] / merged["count"] if merged["count"] else nan
                )
                for key in ("median", "p95", "p99"):
                    merged[key] = nan

    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
        "collected": dict(sorted(collected.items())),
    }


__all__ = [
    "RATIO_METRICS",
    "merge_metrics_snapshots",
    "merge_profiles",
    "merge_trace_events",
    "registry_histogram_samples",
]
