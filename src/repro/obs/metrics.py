"""Metrics: counters, gauges and histograms behind one labelled registry.

The registry memoises metric instances by ``(name, labels)`` so hot paths
can fetch a metric once and keep the object — incrementing a
:class:`Counter` is then a single integer add.  Histograms keep raw
samples (simulation runs are short-lived) and compute interpolated
percentiles compatible with :func:`statistics.quantiles`
(``method="inclusive"``).

Everything here is nan-safe: summaries of empty histograms report
``float("nan")`` rather than raising, so zero-delivery scenarios still
produce a well-formed report.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

LabelKey = Tuple[str, Tuple[Tuple[str, str], ...]]

#: Metric families measured against the host's wall clock rather than
#: simulated time; excluded from ``snapshot(deterministic=True)``.
WALL_CLOCK_METRICS = frozenset({"unit.process_seconds"})


def _label_key(name: str, labels: Dict[str, object]) -> LabelKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_key(key: LabelKey) -> str:
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time scalar."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Raw-sample histogram with interpolated percentile summaries."""

    __slots__ = ("samples",)

    def __init__(self) -> None:
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        self.samples.append(value)

    # -- derived ------------------------------------------------------------

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    def mean(self) -> float:
        if not self.samples:
            return float("nan")
        return self.total / len(self.samples)

    def percentile(self, fraction: float) -> float:
        """Linearly interpolated quantile (inclusive method).

        The contract, for ``fraction`` in ``[0, 1]``:

        * empty histogram → ``nan``;
        * one sample → that sample, for every fraction;
        * otherwise the linear interpolation at rank
          ``(n - 1) * fraction``, matching
          ``statistics.quantiles(samples, n=N, method="inclusive")`` at
          the corresponding cut points.  When the rank lands on a sample
          (integer position) or both interpolation endpoints are equal —
          in particular for all-equal-sample histograms — the sample
          value is returned *exactly*, with no floating-point drift from
          the ``a*(1-w) + b*w`` blend (``0.1*(1-0.3) + 0.1*0.3`` is not
          ``0.1`` in binary floating point).
        """
        return self._percentile(sorted(self.samples), fraction)

    @staticmethod
    def _percentile(ordered: List[float], fraction: float) -> float:
        if not ordered:
            return float("nan")
        if len(ordered) == 1:
            return ordered[0]
        position = (len(ordered) - 1) * fraction
        lower = int(math.floor(position))
        upper = min(lower + 1, len(ordered) - 1)
        weight = position - lower
        if weight == 0.0 or ordered[lower] == ordered[upper]:
            return ordered[lower]
        return ordered[lower] * (1.0 - weight) + ordered[upper] * weight

    def summary(self) -> Dict[str, float]:
        """Count/sum/mean/min/max plus median, p95 and p99.

        Sorts the samples once and derives every percentile from the
        same ordered list (:meth:`percentile` documents the
        interpolation contract).
        """
        if not self.samples:
            nan = float("nan")
            return {
                "count": 0.0,
                "sum": 0.0,
                "mean": nan,
                "min": nan,
                "max": nan,
                "median": nan,
                "p95": nan,
                "p99": nan,
            }
        ordered = sorted(self.samples)
        return {
            "count": float(len(ordered)),
            "sum": self.total,
            "mean": self.mean(),
            "min": ordered[0],
            "max": ordered[-1],
            "median": self._percentile(ordered, 0.5),
            "p95": self._percentile(ordered, 0.95),
            "p99": self._percentile(ordered, 0.99),
        }


class MetricsRegistry:
    """Labelled metric store plus pull-style collectors.

    ``counter("wire.messages_in", node=3, msg_type="TC")`` returns the same
    :class:`Counter` on every call with identical labels, so callers may
    cache the instance for hot paths.  Collectors let existing ad-hoc
    counter owners (e.g. :class:`~repro.sim.stats.NetworkStats`, the
    wireless medium) publish their quantities into :meth:`snapshot`
    without paying any recording overhead.
    """

    def __init__(self) -> None:
        self._counters: Dict[LabelKey, Counter] = {}
        self._gauges: Dict[LabelKey, Gauge] = {}
        self._histograms: Dict[LabelKey, Histogram] = {}
        self._collectors: List[Callable[[], Dict[str, float]]] = []

    # -- metric accessors ---------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        key = _label_key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = _label_key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(self, name: str, **labels: object) -> Histogram:
        key = _label_key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram()
        return metric

    # -- collectors ---------------------------------------------------------

    def register_collector(self, collector: Callable[[], Dict[str, float]]) -> None:
        """Register a zero-cost pull source merged into :meth:`snapshot`."""
        self._collectors.append(collector)

    # -- views --------------------------------------------------------------

    def counters(self, name: Optional[str] = None) -> Dict[str, int]:
        return {
            _render_key(key): metric.value
            for key, metric in sorted(self._counters.items())
            if name is None or key[0] == name
        }

    def counter_values(self, name: str, label: str) -> Dict[str, int]:
        """``label`` value -> counter value, for one counter family."""
        out: Dict[str, int] = {}
        for (metric_name, labels), metric in self._counters.items():
            if metric_name != name:
                continue
            for key, value in labels:
                if key == label:
                    out[value] = metric.value
        return out

    def snapshot(self, deterministic: bool = False) -> Dict[str, object]:
        """Deterministically ordered, JSON-serializable registry dump.

        ``deterministic=True`` drops metrics measured against the host's
        wall clock (:data:`WALL_CLOCK_METRICS`), leaving only
        simulated-time quantities — two runs of the same seeded scenario
        then produce equal snapshots (the fault-replay contract; the
        trace-side analogue is ``dump_trace_jsonl(deterministic=True)``).
        """
        collected: Dict[str, float] = {}
        for collector in self._collectors:
            collected.update(collector())
        return {
            "counters": self.counters(),
            "gauges": {
                _render_key(key): metric.value
                for key, metric in sorted(self._gauges.items())
            },
            "histograms": {
                _render_key(key): metric.summary()
                for key, metric in sorted(self._histograms.items())
                if not (deterministic and key[0] in WALL_CLOCK_METRICS)
            },
            "collected": dict(sorted(collected.items())),
        }


def merge_labels(base: Dict[str, object], extra: Dict[str, object]) -> Dict[str, object]:
    merged = dict(base)
    merged.update(extra)
    return merged


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "WALL_CLOCK_METRICS",
    "merge_labels",
]
