"""Cross-run summary merging: many scenario results, one campaign report.

A campaign (:mod:`repro.tools.campaign`) produces one result dict per run
(the output of :func:`repro.tools.scenario.run_scenario`).  This module
reduces a collection of those dicts into a single summary with percentile
distributions per quantity, overall and grouped by an axis of the sweep
(``protocol`` by default) — the shape the paper's evaluation tables have:
*per protocol, over seeds × topologies, delivery/overhead/latency*.

The reduction reuses :class:`repro.obs.metrics.Histogram` so percentiles
come from the same single implementation the rest of the observability
layer uses, and every value is passed through :func:`sanitize` (NaN/inf →
``null``) so the summary is strict JSON.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.obs.export import _nan_to_null
from repro.obs.metrics import Histogram

#: Scalar fields of a scenario result worth distributing across runs.
SUMMARY_FIELDS = (
    "delivery_ratio",
    "latency_mean_s",
    "latency_p95_s",
    "control_frames",
    "control_bytes",
    "events_executed",
)


def sanitize(value: Any) -> Any:
    """Recursively replace non-finite floats with ``None`` (strict JSON)."""
    return _nan_to_null(value)


def _distribution(samples: Sequence[float]) -> Dict[str, float]:
    hist = Histogram()
    for sample in samples:
        hist.observe(float(sample))
    return hist.summary()


def _field_samples(
    results: Iterable[Dict[str, Any]], fields: Sequence[str]
) -> Dict[str, List[float]]:
    samples: Dict[str, List[float]] = {f: [] for f in fields}
    for result in results:
        for f in fields:
            value = result.get(f)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                samples[f].append(float(value))
    return samples


def summarize_runs(
    results: Iterable[Dict[str, Any]],
    group_by: Optional[str] = "protocol",
    fields: Sequence[str] = SUMMARY_FIELDS,
) -> Dict[str, Any]:
    """Merge scenario result dicts into one percentile summary.

    ``group_by`` names a key of each result's ``spec`` (``protocol``,
    ``topology``, ``seed``, …); ``None`` disables grouping.  Runs missing
    a field (e.g. ``latency_mean_s`` is ``null`` when nothing was
    delivered) are simply excluded from that field's distribution — the
    per-field ``count`` records how many runs contributed.
    """
    results = list(results)
    overall = {
        name: _distribution(values)
        for name, values in _field_samples(results, fields).items()
    }
    summary: Dict[str, Any] = {
        "runs": len(results),
        "fields": list(fields),
        "overall": overall,
    }
    if group_by is not None:
        groups: Dict[str, List[Dict[str, Any]]] = {}
        for result in results:
            key = str(result.get("spec", {}).get(group_by, "?"))
            groups.setdefault(key, []).append(result)
        summary["group_by"] = group_by
        summary["groups"] = {
            key: {
                "runs": len(members),
                **{
                    name: _distribution(values)
                    for name, values in _field_samples(members, fields).items()
                },
            }
            for key, members in sorted(groups.items())
        }
    return sanitize(summary)


def summarize_profiles(
    results: Iterable[Dict[str, Any]],
) -> Optional[Dict[str, Any]]:
    """Pool per-run profiler roll-ups (``result["profile"]``) for a sweep.

    Each run's roll-up is the deterministic counts-only view
    (:func:`repro.obs.profile.summary_counts`); this sums its
    ``by_subsystem`` counts across runs and distributes per-run event
    totals, so a campaign summary shows where the whole sweep's events
    went.  Returns ``None`` when no run carried a profile (the common,
    profiling-off case), so ``summary.json`` only grows a ``profiles``
    section when ``--profile`` was actually on.
    """
    profiles = [
        result["profile"]
        for result in results
        if isinstance(result, dict) and result.get("profile")
    ]
    if not profiles:
        return None
    by_subsystem: Dict[str, int] = {}
    for profile in profiles:
        for sub, count in profile.get("by_subsystem", {}).items():
            by_subsystem[sub] = by_subsystem.get(sub, 0) + int(count)
    events = [float(profile.get("events", 0)) for profile in profiles]
    return sanitize({
        "runs": len(profiles),
        "events_total": int(sum(events)),
        "by_subsystem": {k: by_subsystem[k] for k in sorted(by_subsystem)},
        "events_per_run": _distribution(events),
    })


__all__ = [
    "SUMMARY_FIELDS",
    "sanitize",
    "summarize_profiles",
    "summarize_runs",
]
