"""Offline causal analysis of provenance-linked traces.

The instrumented simulator assigns every transmission a **provenance id**
(``prov`` attribute on its transmit/deliver records) and stamps every
record produced while a delivery is being processed with a ``cause``
attribute naming that provenance id (see :mod:`repro.obs.trace`).  This
module rebuilds the resulting cross-node causal DAG from a recorded
trace — a list of :class:`~repro.obs.trace.TraceEvent`, typically loaded
with :func:`repro.obs.export.load_trace_jsonl` — and answers the
questions the paper's evaluation cares about:

* :meth:`CausalGraph.chain` / :meth:`CausalGraph.critical_path` — the
  exact chain of transmissions that produced a given record (e.g. a
  kernel route install), with a per-edge breakdown of where the time
  went: ``propagation`` (in-flight on a link), ``timer_wait`` (sitting
  in a queue / behind a modelled processing delay) and ``processing``
  (inside a handler dispatch).  The edges partition the interval from
  the chain's root to the target record exactly, so their sum equals
  the end-to-end delay by construction.
* :meth:`CausalGraph.explain_route` — why / why-not route queries
  ("does node A have a route to B at t=X, which event gave/took it?")
  replayed from the kernel-table mutation records.
* :func:`to_chrome_trace` — Chrome trace-event JSON (one track per
  node, flow arrows following each transmission from transmit to every
  delivery) viewable in Perfetto or ``chrome://tracing``.

Everything here is pure offline post-processing: nothing in this module
runs during a simulation.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.trace import TraceEvent

#: Record names that mint a provenance id (carry ``prov`` describing
#: themselves rather than a frame they react to).
MINT_NAMES = ("medium.broadcast", "medium.unicast", "node.data_send")


def _reconfig_label(event: TraceEvent) -> str:
    """Human label for a reconfiguration record, e.g. the switch pair."""
    attrs = event.attrs
    if "old" in attrs and "new" in attrs:
        return f"{event.name} {attrs['old']}->{attrs['new']}"
    detail = attrs.get("protocol") or attrs.get("unit") or attrs.get("child")
    return f"{event.name} {detail}" if detail else event.name


class Transmission:
    """One provenance id: a transmission (or data-send origination)."""

    __slots__ = ("prov", "mint", "deliveries", "losses", "effects", "children")

    def __init__(self, prov: int) -> None:
        self.prov = prov
        #: The record that minted this id (transmit / data-send), if seen.
        self.mint: Optional[TraceEvent] = None
        #: ``medium.deliver`` records carrying this id.
        self.deliveries: List[TraceEvent] = []
        #: ``medium.loss`` / ``medium.tamper`` records carrying this id.
        self.losses: List[TraceEvent] = []
        #: Every record whose ``cause`` is this id.
        self.effects: List[TraceEvent] = []
        #: Provenance ids minted while processing this transmission.
        self.children: List[int] = []

    @property
    def cause(self) -> int:
        """Provenance id this transmission was minted under (0 = root)."""
        if self.mint is None:
            return 0
        return int(self.mint.attrs.get("cause", 0) or 0)

    @property
    def origin_node(self) -> Optional[int]:
        if self.mint is None:
            return None
        attrs = self.mint.attrs
        node = attrs.get("sender", attrs.get("node"))
        return None if node is None else int(node)

    @property
    def label(self) -> str:
        """Human label: message type when known, else the mint name."""
        if self.mint is None:
            return f"prov {self.prov}"
        msg = self.mint.attrs.get("msg")
        if msg:
            return str(msg)
        if self.mint.name == "node.data_send":
            return "DATA"
        return str(self.mint.attrs.get("kind", self.mint.name))


class Edge:
    """One critical-path edge: a contiguous slice of simulated time."""

    __slots__ = ("kind", "from_node", "to_node", "t0", "t1", "label")

    def __init__(
        self,
        kind: str,
        from_node: Optional[int],
        to_node: Optional[int],
        t0: float,
        t1: float,
        label: str = "",
    ) -> None:
        self.kind = kind          # "propagation" | "timer_wait" | "processing"
        self.from_node = from_node
        self.to_node = to_node
        self.t0 = t0
        self.t1 = t1
        self.label = label

    @property
    def dt(self) -> float:
        return self.t1 - self.t0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "from_node": self.from_node,
            "to_node": self.to_node,
            "t0": self.t0,
            "t1": self.t1,
            "dt": self.dt,
            "label": self.label,
        }


class CriticalPath:
    """The causal chain behind one target record, as exact time edges.

    ``edges`` partition ``[root.t_sim, target.t_sim]`` with no gaps or
    overlaps, so ``sum(e.dt for e in edges) == total`` exactly (up to
    float association error).
    """

    def __init__(
        self,
        target: TraceEvent,
        chain: List[Transmission],
        edges: List[Edge],
    ) -> None:
        self.target = target
        self.chain = chain
        self.edges = edges

    @property
    def root(self) -> Optional[TraceEvent]:
        return self.chain[0].mint if self.chain else None

    @property
    def total(self) -> float:
        root = self.root
        if root is None:
            return 0.0
        return self.target.t_sim - root.t_sim

    def breakdown(self) -> Dict[str, float]:
        """Total simulated time per edge kind."""
        out = {"propagation": 0.0, "timer_wait": 0.0, "processing": 0.0}
        for edge in self.edges:
            out[edge.kind] = out.get(edge.kind, 0.0) + edge.dt
        return out

    def nodes(self) -> List[int]:
        """Distinct nodes on the chain, in traversal order."""
        seen: List[int] = []
        for tx in self.chain:
            node = tx.origin_node
            if node is not None and node not in seen:
                seen.append(node)
        target_node = self.target.attrs.get("node")
        if target_node is not None and int(target_node) not in seen:
            seen.append(int(target_node))
        return seen


class CausalGraph:
    """Provenance DAG + kernel-table timeline rebuilt from one trace."""

    def __init__(self, events: Iterable[TraceEvent]) -> None:
        self.events = list(events)
        self.transmissions: Dict[int, Transmission] = {}
        #: (event, node, destination, next_hop) per installed/updated route.
        self._installs: List[Tuple[TraceEvent, int, int, int]] = []
        #: (event, node, destination, action) per route removal.
        self._removals: List[Tuple[TraceEvent, int, int, str]] = []
        #: node -> completed unit.process end-records, in trace order.
        self._unit_ends: Dict[int, List[TraceEvent]] = {}
        #: (node, dst) -> node.no_route records.
        self._no_route: Dict[Tuple[int, int], List[TraceEvent]] = {}
        #: Reconfiguration enactments: every completed ``reconfig.*`` span
        #: (end records, which carry the duration) plus the instantaneous
        #: ``reconfig.state_transfer`` records, in trace order.
        self.reconfig_events: List[TraceEvent] = []
        #: node -> [(t0, t1, end-record)] completed reconfig spans.
        self._reconfig_spans: Dict[int, List[Tuple[float, float, TraceEvent]]] = {}
        #: packet_id -> node.data_send record.
        self._data_sends: Dict[int, TraceEvent] = {}
        #: packet_ids seen in node.data_delivered records.
        self._data_delivered: Dict[int, TraceEvent] = {}
        #: packet_id -> node.data_drop / node.no_route records (drop causes).
        self._data_drops: Dict[int, List[TraceEvent]] = {}
        self._index()

    # -- construction -------------------------------------------------------

    def _tx(self, prov: int) -> Transmission:
        tx = self.transmissions.get(prov)
        if tx is None:
            tx = self.transmissions[prov] = Transmission(prov)
        return tx

    def _index(self) -> None:
        for event in self.events:
            attrs = event.attrs
            prov = attrs.get("prov")
            name = event.name
            if prov:
                prov = int(prov)
                if name in MINT_NAMES:
                    self._tx(prov).mint = event
                elif name == "medium.deliver":
                    self._tx(prov).deliveries.append(event)
                elif name in (
                    "medium.loss", "medium.tamper", "medium.no_link",
                    "medium.unregistered",
                ):
                    self._tx(prov).losses.append(event)
            cause = attrs.get("cause")
            if cause:
                cause = int(cause)
                tx = self._tx(cause)
                tx.effects.append(event)
                if prov and name in MINT_NAMES:
                    tx.children.append(int(prov))
            if name == "kernel.route_add":
                self._installs.append((
                    event, int(attrs.get("node", -1)),
                    int(attrs["destination"]), int(attrs["next_hop"]),
                ))
            elif name == "kernel.replace_all":
                node = int(attrs.get("node", -1))
                for dest, next_hop in attrs.get("added") or ():
                    self._installs.append(
                        (event, node, int(dest), int(next_hop))
                    )
                for dest in attrs.get("removed") or ():
                    self._removals.append((event, node, int(dest), "replaced"))
            elif name == "kernel.route_del":
                self._removals.append((
                    event, int(attrs.get("node", -1)),
                    int(attrs["destination"]), "deleted",
                ))
            elif name == "kernel.route_expired":
                self._removals.append((
                    event, int(attrs.get("node", -1)),
                    int(attrs["destination"]), "expired",
                ))
            elif name == "unit.process" and event.kind == "end":
                node = attrs.get("node")
                if node is not None:
                    self._unit_ends.setdefault(int(node), []).append(event)
            elif name == "node.no_route":
                key = (int(attrs["node"]), int(attrs["dst"]))
                self._no_route.setdefault(key, []).append(event)
                packet_id = attrs.get("packet_id")
                if packet_id is not None:
                    self._data_drops.setdefault(int(packet_id), []).append(event)
            elif name == "node.data_drop":
                self._data_drops.setdefault(
                    int(attrs["packet_id"]), []
                ).append(event)
            elif name == "node.data_send":
                self._data_sends[int(attrs["packet_id"])] = event
            elif name == "node.data_delivered":
                self._data_delivered.setdefault(int(attrs["packet_id"]), event)
            elif name.startswith("reconfig."):
                if name == "reconfig.state_transfer":
                    self.reconfig_events.append(event)
                elif event.kind == "end":
                    self.reconfig_events.append(event)
                    node = attrs.get("node")
                    if node is not None:
                        self._reconfig_spans.setdefault(int(node), []).append(
                            (event.t_sim - event.dt_sim, event.t_sim, event)
                        )

    # -- route installs ------------------------------------------------------

    def route_installs(
        self, node: Optional[int] = None, destination: Optional[int] = None
    ) -> List[Tuple[TraceEvent, int, int, int]]:
        """Route-install records, optionally filtered by node/destination."""
        return [
            item for item in self._installs
            if (node is None or item[1] == node)
            and (destination is None or item[2] == destination)
        ]

    def first_route_install(
        self, node: int, destination: int
    ) -> Optional[TraceEvent]:
        installs = self.route_installs(node, destination)
        return installs[0][0] if installs else None

    # -- causal chains -------------------------------------------------------

    def chain(self, event: TraceEvent) -> List[Transmission]:
        """Transmissions behind ``event``, root first.

        Follows ``event.cause`` through each mint's own ``cause`` until a
        root (a timer-driven transmission or an application data send).
        """
        chain: List[Transmission] = []
        cause = int(event.attrs.get("cause", 0) or 0)
        seen = set()
        while cause and cause not in seen:
            seen.add(cause)
            tx = self.transmissions.get(cause)
            if tx is None:
                break
            chain.append(tx)
            cause = tx.cause
        chain.reverse()
        return chain

    def _delivery_to(
        self, tx: Transmission, node: int, before: float
    ) -> Optional[TraceEvent]:
        """The delivery of ``tx`` at ``node`` that the chain continued from."""
        best = None
        for deliver in tx.deliveries:
            if int(deliver.attrs.get("dst", -1)) != node:
                continue
            if deliver.t_sim <= before + 1e-12 and (
                best is None or deliver.t_sim > best.t_sim
            ):
                best = deliver
        return best

    def _split_gap(
        self, node: int, t0: float, t1: float, cause: int, edges: List[Edge]
    ) -> None:
        """Partition the on-node gap [t0, t1] into timer_wait + processing.

        Completed ``unit.process`` spans at ``node`` attributed to
        ``cause`` within the window count as processing; whatever remains
        (queueing, modelled per-message processing delay, any other
        scheduled wait) is timer_wait.  Zero-length parts are elided.
        """
        gap = t1 - t0
        if gap <= 0:
            return
        processing = 0.0
        for end in self._unit_ends.get(node, ()):
            if int(end.attrs.get("cause", 0) or 0) != cause:
                continue
            if t0 - 1e-12 <= end.t_sim <= t1 + 1e-12:
                processing += end.dt_sim
        processing = min(processing, gap)
        wait = gap - processing
        if wait > 1e-12:
            edges.append(Edge("timer_wait", node, node, t0, t0 + wait))
        if processing > 1e-12 or not edges or edges[-1].t1 < t1:
            edges.append(Edge("processing", node, node, t0 + wait, t1))

    def critical_path(self, target: TraceEvent) -> CriticalPath:
        """Exact-partition delay breakdown from chain root to ``target``."""
        chain = self.chain(target)
        edges: List[Edge] = []
        if not chain:
            return CriticalPath(target, chain, edges)
        target_node = target.attrs.get("node")
        target_node = None if target_node is None else int(target_node)
        for i, tx in enumerate(chain):
            mint = tx.mint
            if mint is None:
                continue
            if i + 1 < len(chain):
                nxt = chain[i + 1]
                next_node = nxt.origin_node
                next_t = nxt.mint.t_sim if nxt.mint is not None else mint.t_sim
            else:
                next_node = target_node
                next_t = target.t_sim
            if next_node is None:
                continue
            deliver = (
                None if next_node == tx.origin_node
                else self._delivery_to(tx, next_node, next_t)
            )
            if deliver is not None:
                edges.append(Edge(
                    "propagation", tx.origin_node, next_node,
                    mint.t_sim, deliver.t_sim, label=tx.label,
                ))
                self._split_gap(
                    next_node, deliver.t_sim, next_t, tx.prov, edges
                )
            else:
                # Same-node causation (e.g. data send -> RREQ mint): the
                # whole stretch is on-node time.
                self._split_gap(next_node, mint.t_sim, next_t, tx.prov, edges)
        return CriticalPath(target, chain, edges)

    # -- reconfiguration attribution ----------------------------------------

    def reconfig_during(
        self, node: int, t: float
    ) -> Optional[TraceEvent]:
        """The reconfiguration span covering time ``t`` on ``node``, if any."""
        for t0, t1, event in self._reconfig_spans.get(node, ()):
            if t0 - 1e-9 <= t <= t1 + 1e-9:
                return event
        return None

    def reconfig_summary(self) -> List[Dict[str, Any]]:
        """Every reconfiguration record, flattened for display."""
        out: List[Dict[str, Any]] = []
        for event in self.reconfig_events:
            attrs = event.attrs
            entry: Dict[str, Any] = {
                "t": event.t_sim,
                "name": event.name,
                "node": attrs.get("node"),
                "label": _reconfig_label(event),
            }
            if event.kind == "end":
                entry["dt"] = event.dt_sim
            if event.name == "reconfig.state_transfer":
                entry["bytes"] = attrs.get("bytes")
            out.append(entry)
        return out

    # -- data-plane accounting ----------------------------------------------

    def _origin_packet(self, tx: Transmission) -> Optional[int]:
        """The application packet id a data transmission originates from."""
        seen = set()
        current: Optional[Transmission] = tx
        while current is not None and current.prov not in seen:
            seen.add(current.prov)
            mint = current.mint
            if mint is not None and mint.name == "node.data_send":
                packet_id = mint.attrs.get("packet_id")
                return None if packet_id is None else int(packet_id)
            cause = current.cause
            if not cause:
                return None
            current = self.transmissions.get(cause)
        return None

    def account_data(
        self, t0: Optional[float] = None, t1: Optional[float] = None
    ) -> Dict[str, Any]:
        """No-silent-loss ledger for application data packets.

        Every ``node.data_send`` whose origination time falls inside
        ``[t0, t1]`` is classified as exactly one of:

        * ``delivered`` — a ``node.data_delivered`` record exists;
        * ``dropped`` (by reason) — a drop record with an explicit cause
          exists: ``node.data_drop`` (TTL expiry / forwarding disabled),
          ``node.no_route`` without a buffering hook, or a medium loss
          record (``medium.loss`` / ``medium.tamper`` / ``medium.no_link``
          / ``medium.unregistered``) on any hop of the packet's causal
          chain;
        * ``buffered`` — held by NetLink pending route discovery
          (``node.no_route`` with the netfilter hook) and never resolved;
        * ``in_flight`` — a hop transmission exists with neither a
          delivery nor a loss record (the trace window closed around it);
        * ``silent`` — none of the above.  A non-empty ``silent`` list is
          an accounting hole: the simulator lost a packet without leaving
          a cause record, which the reconfiguration battery treats as an
          invariant violation.
        """
        tx_of_packet: Dict[int, List[Transmission]] = {}
        for tx in self.transmissions.values():
            mint = tx.mint
            if mint is None:
                continue
            if mint.name == "node.data_send":
                continue  # origination, not a hop transmission
            if mint.attrs.get("kind") == "data":
                packet_id = self._origin_packet(tx)
                if packet_id is not None:
                    tx_of_packet.setdefault(packet_id, []).append(tx)

        dropped: Dict[str, int] = {}
        outcomes: Dict[int, str] = {}
        silent: List[int] = []
        sent = delivered = buffered_count = in_flight = 0
        for packet_id, send in sorted(self._data_sends.items()):
            if t0 is not None and send.t_sim < t0 - 1e-9:
                continue
            if t1 is not None and send.t_sim > t1 + 1e-9:
                continue
            sent += 1
            if packet_id in self._data_delivered:
                delivered += 1
                outcomes[packet_id] = "delivered"
                continue
            drop_reason: Optional[str] = None
            buffered = False
            for record in self._data_drops.get(packet_id, ()):
                if record.name == "node.data_drop":
                    drop_reason = str(record.attrs.get("reason", "drop"))
                    break
                if record.attrs.get("originated") and (
                    record.attrs.get("hook") == "netfilter"
                ):
                    buffered = True
                else:
                    drop_reason = "no_route"
            if drop_reason is None:
                losses = [
                    loss
                    for tx in tx_of_packet.get(packet_id, ())
                    for loss in tx.losses
                ]
                if losses:
                    drop_reason = losses[-1].name.split(".", 1)[1]
            if drop_reason is not None:
                dropped[drop_reason] = dropped.get(drop_reason, 0) + 1
                outcomes[packet_id] = f"dropped:{drop_reason}"
            elif buffered:
                buffered_count += 1
                outcomes[packet_id] = "buffered"
            else:
                live = [
                    tx
                    for tx in tx_of_packet.get(packet_id, ())
                    if not tx.deliveries and not tx.losses
                ]
                if live:
                    in_flight += 1
                    outcomes[packet_id] = "in_flight"
                else:
                    silent.append(packet_id)
                    outcomes[packet_id] = "silent"
        return {
            "sent": sent,
            "delivered": delivered,
            "dropped": dropped,
            "buffered": buffered_count,
            "in_flight": in_flight,
            "silent": silent,
            "outcomes": outcomes,
        }

    # -- why / why-not route queries ----------------------------------------

    def explain_route(
        self, node: int, destination: int, at: Optional[float] = None
    ) -> Dict[str, Any]:
        """Replay kernel-table records: node's route to ``destination`` at ``at``.

        Returns a dict with the current state (``installed``,
        ``next_hop``, ``since``), the record that produced it
        (``last_event``), the full mutation ``history`` up to ``at``, and
        the count of data packets the node dropped (or buffered) for lack
        of this route (``no_route_events``).
        """
        history: List[Dict[str, Any]] = []
        for event, ev_node, dest, next_hop in self._installs:
            if ev_node == node and dest == destination:
                history.append({
                    "t": event.t_sim, "action": "install",
                    "next_hop": next_hop,
                    "proto": event.attrs.get("proto", ""),
                    "seq": event.seq,
                    "cause": int(event.attrs.get("cause", 0) or 0),
                })
        for event, ev_node, dest, action in self._removals:
            if ev_node == node and dest == destination:
                history.append({
                    "t": event.t_sim, "action": action, "seq": event.seq,
                    "cause": int(event.attrs.get("cause", 0) or 0),
                })
        history.sort(key=lambda item: (item["t"], item["seq"]))
        if at is not None:
            history = [item for item in history if item["t"] <= at]
        for item in history:
            span = self.reconfig_during(node, item["t"])
            if span is not None:
                item["during"] = _reconfig_label(span)
        last = history[-1] if history else None
        installed = last is not None and last["action"] == "install"
        no_route = [
            {"t": event.t_sim, "seq": event.seq,
             "originated": bool(event.attrs.get("originated"))}
            for event in self._no_route.get((node, destination), ())
            if at is None or event.t_sim <= at
        ]
        return {
            "node": node,
            "destination": destination,
            "at": at,
            "installed": installed,
            "next_hop": last["next_hop"] if installed else None,
            "proto": last.get("proto", "") if installed else None,
            "since": last["t"] if installed else None,
            "last_event": last,
            "history": history,
            "no_route_events": no_route,
        }

    # -- summaries -----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        minted = [tx for tx in self.transmissions.values() if tx.mint is not None]
        linked = sum(1 for tx in minted if tx.cause)
        return {
            "transmissions": len(minted),
            "caused_transmissions": linked,
            "root_transmissions": len(minted) - linked,
            "deliveries": sum(len(tx.deliveries) for tx in minted),
            "losses": sum(len(tx.losses) for tx in minted),
            "route_installs": len(self._installs),
            "route_removals": len(self._removals),
            "reconfigurations": sum(
                1 for e in self.reconfig_events if e.kind == "end"
            ),
            "state_transfer_bytes": sum(
                int(e.attrs.get("bytes", 0) or 0)
                for e in self.reconfig_events
                if e.name == "reconfig.state_transfer"
            ),
        }


# -- Chrome trace-event export ----------------------------------------------

#: Thread ids within each node's track.
_TID_MEDIUM = 0
_TID_UNITS = 1
_TID_KERNEL = 2
_TID_NAMES = {_TID_MEDIUM: "medium", _TID_UNITS: "units", _TID_KERNEL: "kernel"}

#: pid used for records not attributable to a node (scheduler, reconfig).
_SIM_PID = 0


def _event_pid_tid(event: TraceEvent) -> Tuple[int, int]:
    attrs = event.attrs
    name = event.name
    if name.startswith("medium."):
        if name == "medium.deliver":
            return int(attrs.get("dst", _SIM_PID)), _TID_MEDIUM
        return int(attrs.get("sender", _SIM_PID)), _TID_MEDIUM
    if name.startswith("kernel."):
        return int(attrs.get("node", _SIM_PID)), _TID_KERNEL
    node = attrs.get("node")
    if node is not None:
        return int(node), _TID_UNITS
    return _SIM_PID, _TID_UNITS


def _json_safe_attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    return {key: repr(value) if isinstance(value, (bytes, set)) else value
            for key, value in attrs.items()}


def to_chrome_trace(events: Iterable[TraceEvent]) -> Dict[str, Any]:
    """Chrome trace-event JSON (dict form) for Perfetto / chrome://tracing.

    One process (track) per node — pid 0 is the simulator itself —
    with per-category threads, complete ("X") slices for spans, instants
    for point events, and flow arrows ("s"/"f") following every
    provenance id from its transmit record to each of its deliveries.
    Timestamps are simulated time in microseconds.
    """
    events = list(events)
    trace: List[Dict[str, Any]] = []
    pids = {_SIM_PID}
    mints: Dict[int, Dict[str, Any]] = {}

    for event in events:
        pid, tid = _event_pid_tid(event)
        pids.add(pid)
        ts = event.t_sim * 1e6
        name = event.name
        msg = event.attrs.get("msg")
        display = f"{name} {msg}" if msg else name
        args = _json_safe_attrs(event.attrs)
        if event.kind == "end":
            trace.append({
                "name": display, "cat": name.split(".", 1)[0], "ph": "X",
                "pid": pid, "tid": tid,
                "ts": ts - event.dt_sim * 1e6, "dur": event.dt_sim * 1e6,
                "args": args,
            })
        elif event.kind == "event":
            trace.append({
                "name": display, "cat": name.split(".", 1)[0], "ph": "i",
                "pid": pid, "tid": tid, "ts": ts, "s": "t", "args": args,
            })
            prov = event.attrs.get("prov")
            if prov:
                prov = int(prov)
                if name in MINT_NAMES:
                    mints[prov] = {"pid": pid, "tid": tid, "ts": ts,
                                   "name": display}
                elif name == "medium.deliver" and prov in mints:
                    start = mints[prov]
                    flow_id = f"{prov}:{event.seq}"
                    trace.append({
                        "name": start["name"], "cat": "prov", "ph": "s",
                        "id": flow_id, "pid": start["pid"],
                        "tid": start["tid"], "ts": start["ts"],
                    })
                    trace.append({
                        "name": start["name"], "cat": "prov", "ph": "f",
                        "bp": "e", "id": flow_id, "pid": pid, "tid": tid,
                        "ts": ts,
                    })
        # "begin" records are folded into the "X" slice of their "end".

    for pid in sorted(pids):
        label = "simulator" if pid == _SIM_PID else f"node {pid}"
        trace.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": label},
        })
        for tid, tname in _TID_NAMES.items():
            trace.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": tname},
            })

    return {"traceEvents": trace, "displayTimeUnit": "ms"}


__all__ = [
    "CausalGraph",
    "CriticalPath",
    "Edge",
    "Transmission",
    "to_chrome_trace",
    "MINT_NAMES",
]
