"""DYMOUM v0.3 stand-in: a monolithic DYMO daemon.

Protocol behaviour mirrors the MANETKit DYMO (same RE path accumulation,
RERR semantics, retry/backoff, route hold times).  Two documented DYMOUM
v0.3 characteristics are reproduced deliberately:

* the **libipq packet path** — DYMOUM receives packets through a
  kernel-to-user ip_queue handoff, modelled as a fixed per-control-message
  ``processing_delay`` charged in simulated time plus an extra
  serialize/parse round trip in the receive path;
* the **linear route list** — routes live in an unsorted list scanned on
  every lookup (the real implementation's ``dlist``), not a hash table.

These make DYMOUM measurably slower per message and slower to establish
routes than MANETKit-DYMO, which is the (perhaps surprising) shape of the
paper's Table 1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.packetbb.message import Message, MsgType
from repro.packetbb.packet import Packet, decode, encode
from repro.packetbb.address import Address, AddressBlock
from repro.protocols.common import seq_newer
from repro.protocols.dymo.messages import (
    RREP,
    RREQ,
    build_re,
    build_rerr,
    extend_re,
    parse_re,
    parse_rerr,
)
from repro.sim.kernel_table import DataPacket, NetfilterHooks
from repro.sim.medium import BROADCAST
from repro.sim.node import SimNode

#: Default modelled libipq kernel/user round-trip per control message.
LIBIPQ_DELAY = 0.0012


@dataclass
class _RouteEntry:
    """One entry in DYMOUM's linear route list."""

    destination: int
    next_hop: int
    hop_count: int
    seqnum: int
    expiry: float
    valid: bool = True


class DymoumDaemon:
    """A self-contained DYMO implementation bound to one node."""

    def __init__(
        self,
        node: SimNode,
        hello_interval: float = 1.0,
        route_timeout: float = 5.0,
        rreq_wait: float = 1.0,
        rreq_tries: int = 3,
        net_diameter: int = 10,
        processing_delay: float = LIBIPQ_DELAY,
        seed: Optional[int] = None,
    ) -> None:
        self.node = node
        self.hello_interval = hello_interval
        self.route_timeout = route_timeout
        self.rreq_wait = rreq_wait
        self.rreq_tries = rreq_tries
        self.net_diameter = net_diameter
        self.rng = random.Random(seed if seed is not None else node.node_id)
        self.routes: List[_RouteEntry] = []  # linear list, like the original
        self.neighbours: Dict[int, float] = {}
        self.own_seqnum = 1
        self.rreq_seen: Dict[Tuple[int, int], float] = {}
        self.pending: Dict[int, Tuple[int, float, object]] = {}
        self.buffers: Dict[int, List[DataPacket]] = {}
        self._hello_seq = 0
        self._packet_seq = 0
        self._hello_timer = None
        self._running = False
        self.messages_processed = 0
        self._processing_delay = processing_delay

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.node.ip_forward = True
        self.node.icmp_redirects = False
        self.node.add_control_receiver(
            self.on_wire, processing_delay=self._processing_delay
        )
        self.node.install_hooks(
            NetfilterHooks(
                no_route=self._hook_no_route,
                route_used=self._hook_route_used,
                forward_error=self._hook_forward_error,
            )
        )
        self._schedule_hello(0.1)

    def stop(self) -> None:
        self._running = False
        self.node.remove_control_receiver(self.on_wire)
        self.node.install_hooks(None)
        if self._hello_timer is not None:
            self._hello_timer.cancel()
        for _tries, _wait, timer in self.pending.values():
            if timer is not None:
                timer.cancel()

    # -- linear route list (faithful dlist behaviour) ---------------------------

    def _find_route(self, destination: int) -> Optional[_RouteEntry]:
        now = self.node.scheduler.now
        for entry in self.routes:  # linear scan, as in the original
            if entry.destination == destination:
                if entry.valid and entry.expiry > now:
                    return entry
                return None
        return None

    def _raw_entry(self, destination: int) -> Optional[_RouteEntry]:
        for entry in self.routes:
            if entry.destination == destination:
                return entry
        return None

    def _update_route(
        self, destination: int, next_hop: int, hop_count: int, seqnum: int
    ) -> bool:
        existing = self._raw_entry(destination)
        if existing is not None and existing.valid:
            if seq_newer(existing.seqnum, seqnum):
                return False
            if existing.seqnum == seqnum and existing.hop_count <= hop_count:
                return False
        now = self.node.scheduler.now
        if existing is not None:
            self.routes.remove(existing)
        self.routes.append(
            _RouteEntry(
                destination, next_hop, hop_count, seqnum,
                expiry=now + self.route_timeout,
            )
        )
        self.node.kernel_table.add_route(
            destination, next_hop, hop_count, lifetime=self.route_timeout
        )
        self._resolve_pending(destination)
        return True

    def _invalidate_route(self, destination: int) -> None:
        entry = self._raw_entry(destination)
        if entry is not None:
            entry.valid = False
        self.node.kernel_table.del_route(destination)

    # -- netfilter hooks -----------------------------------------------------------

    def _hook_no_route(self, packet: DataPacket) -> None:
        self.buffers.setdefault(packet.dst, []).append(packet)
        if len(self.buffers[packet.dst]) > 16:
            self.buffers[packet.dst].pop(0)
        self._start_discovery(packet.dst)

    def _hook_route_used(self, destination: int) -> None:
        entry = self._raw_entry(destination)
        if entry is not None and entry.valid:
            entry.expiry = self.node.scheduler.now + self.route_timeout
            self.node.kernel_table.refresh_route(destination, self.route_timeout)

    def _hook_forward_error(self, packet: DataPacket) -> None:
        self._invalidate_route(packet.dst)
        self._broadcast_rerr([(packet.dst, None)])

    def _resolve_pending(self, destination: int) -> None:
        pending = self.pending.pop(destination, None)
        if pending is not None and pending[2] is not None:
            pending[2].cancel()
        for packet in self.buffers.pop(destination, []):
            self.node.reinject(packet)

    # -- discovery -------------------------------------------------------------------

    def _start_discovery(self, destination: int) -> None:
        if destination in self.pending:
            return
        if self._find_route(destination) is not None:
            return
        timer = self.node.scheduler.call_later(
            self.rreq_wait, self._retry, destination
        )
        self.pending[destination] = (1, self.rreq_wait, timer)
        self._send_rreq(destination)

    def _send_rreq(self, destination: int) -> None:
        self.own_seqnum = (self.own_seqnum % 0xFFFF) + 1
        entry = self._raw_entry(destination)
        self._transmit(
            build_re(
                RREQ,
                target=destination,
                path=[(self.node.node_id, self.own_seqnum)],
                hop_limit=self.net_diameter,
                target_seqnum=entry.seqnum if entry is not None else None,
            )
        )

    def _retry(self, destination: int) -> None:
        pending = self.pending.get(destination)
        if pending is None or not self._running:
            return
        tries, wait, _timer = pending
        if self._find_route(destination) is not None:
            del self.pending[destination]
            return
        if tries >= self.rreq_tries:
            del self.pending[destination]
            self.buffers.pop(destination, None)
            return
        wait *= 2
        timer = self.node.scheduler.call_later(wait, self._retry, destination)
        self.pending[destination] = (tries + 1, wait, timer)
        self._send_rreq(destination)

    # -- hello-based neighbour sensing ----------------------------------------------------

    def _schedule_hello(self, delay: float) -> None:
        self._hello_timer = self.node.scheduler.call_later(delay, self._hello_tick)

    def _hello_tick(self) -> None:
        if not self._running:
            return
        now = self.node.scheduler.now
        hold = self.hello_interval * 3.5
        for neighbour in [n for n, t in self.neighbours.items() if now - t > hold]:
            del self.neighbours[neighbour]
            self._neighbour_lost(neighbour)
        self._hello_seq = (self._hello_seq + 1) & 0xFFFF
        self._transmit(
            Message(
                MsgType.HELLO,
                originator=Address.from_node_id(self.node.node_id),
                hop_limit=1,
                hop_count=0,
                seqnum=self._hello_seq,
                address_blocks=[
                    AddressBlock(
                        [Address.from_node_id(a) for a in sorted(self.neighbours)]
                    )
                ],
            )
        )
        jitter = self.rng.uniform(0, 0.1) * self.hello_interval
        self._schedule_hello(self.hello_interval - jitter)

    def _neighbour_lost(self, neighbour: int) -> None:
        broken = []
        for entry in self.routes:
            if entry.valid and entry.next_hop == neighbour:
                entry.valid = False
                self.node.kernel_table.del_route(entry.destination)
                broken.append((entry.destination, entry.seqnum))
        if broken:
            self._broadcast_rerr(broken)

    # -- wire I/O ---------------------------------------------------------------------------

    def _transmit(self, message: Message, link_dst: int = BROADCAST) -> None:
        self._packet_seq = (self._packet_seq + 1) & 0xFFFF
        self.node.send_control(
            encode(Packet([message], seqnum=self._packet_seq)), link_dst
        )

    def on_wire(self, payload: bytes, sender: int) -> None:
        if not self._running:
            return
        # libipq handoff: the payload crosses the kernel/user boundary and
        # is re-parsed from its marshalled form on the far side.
        packet = decode(encode(decode(payload)))
        for message in packet.messages:
            self.messages_processed += 1
            if message.msg_type == int(MsgType.HELLO):
                self._handle_hello(message, sender)
            elif message.msg_type == int(MsgType.RE):
                self._handle_re(message, sender)
            elif message.msg_type == int(MsgType.RERR):
                self._handle_rerr(message, sender)

    def _handle_hello(self, message: Message, sender: int) -> None:
        if sender == self.node.node_id:
            return
        self.neighbours[sender] = self.node.scheduler.now

    def _handle_re(self, message: Message, sender: int) -> None:
        info = parse_re(message)
        if info is None:
            return
        me = self.node.node_id
        if any(addr == me for addr, _seq in info.path):
            return
        # Learn a route to every accumulated address.
        path_len = len(info.path)
        for index, (address, seqnum) in enumerate(info.path):
            if address == me:
                continue
            self._update_route(address, sender, path_len - index, seqnum)
        now = self.node.scheduler.now
        if info.is_rreq:
            key = (info.originator, info.originator_seqnum)
            if key in self.rreq_seen and self.rreq_seen[key] > now:
                return
            self.rreq_seen[key] = now + 10.0
            if info.target == me:
                self.own_seqnum = (self.own_seqnum % 0xFFFF) + 1
                rrep = build_re(
                    RREP,
                    target=info.originator,
                    path=[(me, self.own_seqnum)],
                    hop_limit=self.net_diameter,
                    target_seqnum=info.originator_seqnum,
                )
                route = self._find_route(info.originator)
                if route is not None:
                    self._transmit(rrep, link_dst=route.next_hop)
                return
            if message.forwardable:
                self._transmit(extend_re(message, info, me, self.own_seqnum))
        else:
            if info.target == me:
                return
            route = self._find_route(info.target)
            if route is not None and message.forwardable:
                self._transmit(
                    extend_re(message, info, me, self.own_seqnum),
                    link_dst=route.next_hop,
                )

    def _handle_rerr(self, message: Message, sender: int) -> None:
        affected = []
        for destination, seqnum in parse_rerr(message):
            entry = self._raw_entry(destination)
            if entry is not None and entry.valid and entry.next_hop == sender:
                self._invalidate_route(destination)
                affected.append((destination, seqnum))
        if affected and message.forwardable:
            self._transmit(
                build_rerr(
                    affected,
                    self.node.node_id,
                    hop_limit=(message.hop_limit or 1) - 1,
                )
            )

    def _broadcast_rerr(self, unreachable: List[Tuple[int, Optional[int]]]) -> None:
        self._transmit(build_rerr(unreachable, self.node.node_id))

    # -- inspection ----------------------------------------------------------------------------

    def routing_table(self) -> List[Tuple[int, int, int]]:
        now = self.node.scheduler.now
        return [
            (e.destination, e.next_hop, e.hop_count)
            for e in self.routes
            if e.valid and e.expiry > now
        ]
