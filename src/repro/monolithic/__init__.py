"""Monolithic comparator implementations (paper section 6).

"We used Unik-olsrd as a comparator for our OLSR implementation, and
DYMOUM v0.3 for our DYMO implementation.  These were chosen because they
are the two most popular public domain implementations of these protocols."

These modules are deliberate *non-users* of the framework: each daemon is
one self-contained class with its own inline link sensing, tables, timers
and message handling, attached directly to a :class:`~repro.sim.node.SimNode`.
They share only the PacketBB wire format and the simulation substrate with
the MANETKit implementations, which keeps the performance/footprint
comparison apples-to-apples.  Protocol behaviour and parameters mirror the
framework versions ("identical configuration parameters to the comparator
implementations, e.g. identical HELLO and Topology Change intervals, and
route hold times").

Known comparator characteristics are reproduced rather than idealised:
DYMOUM v0.3's packet path runs through a libipq (ip_queue) kernel-to-user
handoff, modelled as a per-control-message processing delay and an extra
serialize/parse round trip — the documented reason the paper found
MANETKit-DYMO *faster* than DYMOUM (Table 1).
"""

from repro.monolithic.olsrd import OlsrdDaemon
from repro.monolithic.dymoum import DymoumDaemon

__all__ = ["OlsrdDaemon", "DymoumDaemon"]
