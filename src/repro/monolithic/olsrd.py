"""Unik-olsrd stand-in: a monolithic OLSR daemon.

Everything lives in one class: link sensing, MPR selection, TC flooding,
duplicate suppression and route calculation — no components, no event
registry, no reflective layer.  The message formats and timing behaviour
(including triggered HELLOs/TCs) match the MANETKit implementation so the
two are protocol-equivalent; what differs is the *software architecture*,
which is exactly what Table 1 / Table 2 compare.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Set, Tuple

from repro.packetbb.address import Address, AddressBlock
from repro.packetbb.message import Message, MsgType
from repro.packetbb.packet import Packet, decode, encode
from repro.packetbb.tlv import TLV, TLVBlock
from repro.protocols.common import LinkCode, TlvType, Willingness, seq_newer
from repro.sim.kernel_table import KernelRoute
from repro.sim.medium import BROADCAST
from repro.sim.node import SimNode


class OlsrdDaemon:
    """A self-contained OLSR implementation bound to one node."""

    def __init__(
        self,
        node: SimNode,
        hello_interval: float = 2.0,
        tc_interval: float = 5.0,
        jitter: float = 0.25,
        willingness: int = int(Willingness.DEFAULT),
        processing_delay: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        self.node = node
        self.hello_interval = hello_interval
        self.tc_interval = tc_interval
        self.jitter = jitter
        self.willingness = willingness
        self.rng = random.Random(seed if seed is not None else node.node_id)
        # Link sensing state: neighbour -> (asym_until, sym_until)
        self.links: Dict[int, Tuple[float, float]] = {}
        self.two_hop: Dict[int, Set[int]] = {}
        self.neighbour_willingness: Dict[int, int] = {}
        self.mpr_set: Set[int] = set()
        self.selectors: Dict[int, float] = {}
        self.duplicates: Dict[Tuple[int, int], float] = {}
        self.topology: Dict[Tuple[int, int], Tuple[int, float]] = {}
        self.ansn_of: Dict[int, int] = {}
        self.msg_seq_of: Dict[int, int] = {}
        self.ansn = 0
        self.last_advertised: Set[int] = set()
        self.routes: Dict[int, Tuple[int, int]] = {}
        self._hello_seq = 0
        self._tc_seq = 0
        self._packet_seq = 0
        self._empty_tc_rounds = 0
        self._last_hello_trigger = -1e9
        self._last_tc_trigger = -1e9
        self._hello_timer = None
        self._tc_timer = None
        self._running = False
        self.messages_processed = 0
        self._processing_delay = processing_delay

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.node.ip_forward = True
        self.node.icmp_redirects = False
        self.node.add_control_receiver(
            self.on_wire, processing_delay=self._processing_delay
        )
        self._schedule_hello(0.1)
        self._schedule_tc(self._jittered(self.tc_interval))

    def stop(self) -> None:
        self._running = False
        self.node.remove_control_receiver(self.on_wire)
        for handle in (self._hello_timer, self._tc_timer):
            if handle is not None:
                handle.cancel()

    # -- timers ----------------------------------------------------------------

    def _jittered(self, interval: float) -> float:
        return interval - self.rng.uniform(0, self.jitter) * interval

    def _schedule_hello(self, delay: float) -> None:
        if self._hello_timer is not None:
            self._hello_timer.cancel()
        self._hello_timer = self.node.scheduler.call_later(delay, self._hello_tick)

    def _schedule_tc(self, delay: float) -> None:
        if self._tc_timer is not None:
            self._tc_timer.cancel()
        self._tc_timer = self.node.scheduler.call_later(delay, self._tc_tick)

    def _hello_tick(self) -> None:
        if not self._running:
            return
        self._expire()
        self.send_hello()
        self._schedule_hello(self._jittered(self.hello_interval))

    def _tc_tick(self) -> None:
        if not self._running:
            return
        self.send_tc()
        self._schedule_tc(self._jittered(self.tc_interval))

    # -- transmit ------------------------------------------------------------------

    def _transmit(self, message: Message, link_dst: int = BROADCAST) -> None:
        self._packet_seq = (self._packet_seq + 1) & 0xFFFF
        self.node.send_control(
            encode(Packet([message], seqnum=self._packet_seq)), link_dst
        )

    def send_hello(self) -> None:
        now = self.node.scheduler.now
        sym = {n for n, (_a, s) in self.links.items() if s > now}
        mprs = self.mpr_set & sym
        asym = {
            n for n, (a, s) in self.links.items() if a > now and s <= now
        }
        blocks = []
        for addresses, code in (
            (mprs, LinkCode.MPR),
            (sym - mprs, LinkCode.SYM),
            (asym, LinkCode.ASYM),
        ):
            if addresses:
                block = AddressBlock(
                    [Address.from_node_id(a) for a in sorted(addresses)]
                )
                block.tlv_block.add(
                    TLV.of_int(TlvType.LINK_STATUS, int(code), width=1)
                )
                blocks.append(block)
        self._hello_seq = (self._hello_seq + 1) & 0xFFFF
        self._transmit(
            Message(
                MsgType.HELLO,
                originator=Address.from_node_id(self.node.node_id),
                hop_limit=1,
                hop_count=0,
                seqnum=self._hello_seq,
                tlv_block=TLVBlock(
                    [TLV.of_int(TlvType.WILLINGNESS, self.willingness, width=1)]
                ),
                address_blocks=blocks,
            )
        )

    def send_tc(self) -> None:
        now = self.node.scheduler.now
        self._purge_topology(now)
        advertised = {n for n, until in self.selectors.items() if until > now}
        if advertised != self.last_advertised:
            self.ansn = (self.ansn + 1) & 0xFFFF
            self.last_advertised = set(advertised)
        if not advertised:
            self._empty_tc_rounds += 1
            if self._empty_tc_rounds > 3:
                return
        else:
            self._empty_tc_rounds = 0
        self._tc_seq = (self._tc_seq + 1) & 0xFFFF
        self._transmit(
            Message(
                MsgType.TC,
                originator=Address.from_node_id(self.node.node_id),
                hop_limit=255,
                hop_count=0,
                seqnum=self._tc_seq,
                tlv_block=TLVBlock([TLV.of_int(TlvType.ANSN, self.ansn, width=2)]),
                address_blocks=(
                    [
                        AddressBlock(
                            [Address.from_node_id(a) for a in sorted(advertised)]
                        )
                    ]
                    if advertised
                    else []
                ),
            )
        )

    # -- receive ----------------------------------------------------------------------

    def on_wire(self, payload: bytes, sender: int) -> None:
        if not self._running:
            return
        packet = decode(payload)
        for message in packet.messages:
            self.messages_processed += 1
            if message.msg_type == int(MsgType.HELLO):
                self._handle_hello(message, sender)
            elif message.msg_type == int(MsgType.TC):
                self._handle_tc(message, sender)

    def _handle_hello(self, message: Message, sender: int) -> None:
        if sender == self.node.node_id:
            return
        now = self.node.scheduler.now
        validity = self.hello_interval * 3.0
        asym_until, sym_until = self.links.get(sender, (0.0, 0.0))
        is_new = sender not in self.links
        sym_of_sender: Set[int] = set()
        selected_us = False
        listed = False
        for block in message.address_blocks:
            status = block.tlv_block.find(TlvType.LINK_STATUS)
            code = status.as_int() if status is not None else int(LinkCode.SYM)
            addresses = {a.node_id for a in block.addresses}
            if self.node.node_id in addresses:
                listed = True
                if code == int(LinkCode.MPR):
                    selected_us = True
            if code in (int(LinkCode.SYM), int(LinkCode.MPR)):
                sym_of_sender |= addresses
        newly_symmetric = listed and sym_until <= now
        self.links[sender] = (
            now + validity,
            now + validity if listed else sym_until,
        )
        self.two_hop[sender] = sym_of_sender - {self.node.node_id}
        will = message.tlv_block.find(TlvType.WILLINGNESS)
        if will is not None:
            self.neighbour_willingness[sender] = will.as_int()
        if selected_us:
            self.selectors[sender] = now + validity
        if is_new or newly_symmetric:
            self._trigger_hello(now)
        self._recalculate_mprs(now)
        self._recalculate_routes(now)
        self._maybe_trigger_tc(now)

    def _handle_tc(self, message: Message, sender: int) -> None:
        if message.originator is None or message.seqnum is None:
            return
        originator = message.originator.node_id
        now = self.node.scheduler.now
        if originator != self.node.node_id:
            previous = self.msg_seq_of.get(originator)
            if previous is None or seq_newer(message.seqnum, previous):
                self.msg_seq_of[originator] = message.seqnum
                ansn_tlv = message.tlv_block.find(TlvType.ANSN)
                if ansn_tlv is not None:
                    ansn = ansn_tlv.as_int()
                    prev_ansn = self.ansn_of.get(originator)
                    if prev_ansn is None or not seq_newer(prev_ansn, ansn):
                        self.ansn_of[originator] = ansn
                        for key in [
                            k
                            for k, (a, _e) in self.topology.items()
                            if k[0] == originator and seq_newer(ansn, a)
                        ]:
                            del self.topology[key]
                        expiry = now + self.tc_interval * 3.0
                        for address in message.all_addresses():
                            self.topology[(originator, address.node_id)] = (
                                ansn,
                                expiry,
                            )
                        self._recalculate_routes(now)
        self._relay(message, sender, now)

    def _relay(self, message: Message, sender: int, now: float) -> None:
        """RFC 3626 default forwarding: MPR-selector-gated flooding."""
        if message.originator is None or message.seqnum is None:
            return
        originator = message.originator.node_id
        if originator == self.node.node_id:
            return
        key = (originator, message.msg_type, message.seqnum)
        if key in self.duplicates:
            return
        self.duplicates[key] = now + 30.0
        if self.selectors.get(sender, 0.0) <= now:
            return
        if message.hop_limit is None or message.hop_limit <= 0:
            return
        self._transmit(
            Message(
                message.msg_type,
                originator=message.originator,
                hop_limit=message.hop_limit - 1,
                hop_count=(message.hop_count or 0) + 1,
                seqnum=message.seqnum,
                tlv_block=message.tlv_block,
                address_blocks=message.address_blocks,
            )
        )

    # -- triggered messages --------------------------------------------------------------

    def _trigger_hello(self, now: float) -> None:
        if now - self._last_hello_trigger < 0.5:
            return
        self._last_hello_trigger = now
        self._schedule_hello(0.1)

    def _maybe_trigger_tc(self, now: float) -> None:
        advertised = {n for n, until in self.selectors.items() if until > now}
        if advertised == self.last_advertised:
            return
        if now - self._last_tc_trigger < 0.25:
            return
        self._last_tc_trigger = now
        self._schedule_tc(0.25)

    # -- table maintenance ----------------------------------------------------------------

    def _expire(self) -> None:
        now = self.node.scheduler.now
        for neighbour in [n for n, (a, _s) in self.links.items() if a <= now]:
            del self.links[neighbour]
            self.two_hop.pop(neighbour, None)
            self.neighbour_willingness.pop(neighbour, None)
            self.mpr_set.discard(neighbour)
        for neighbour in [n for n, t in self.selectors.items() if t <= now]:
            del self.selectors[neighbour]
        for key in [k for k, t in self.duplicates.items() if t <= now]:
            del self.duplicates[key]
        self._recalculate_mprs(now)
        self._recalculate_routes(now)

    def _purge_topology(self, now: float) -> None:
        for key in [k for k, (_a, e) in self.topology.items() if e <= now]:
            del self.topology[key]

    # -- MPR selection (inline greedy cover) ---------------------------------------------------

    def _recalculate_mprs(self, now: float) -> None:
        sym = {n for n, (_a, s) in self.links.items() if s > now}
        strict: Set[int] = set()
        coverage: Dict[int, Set[int]] = {}
        for neighbour in sym:
            if (
                self.neighbour_willingness.get(neighbour, int(Willingness.DEFAULT))
                == int(Willingness.NEVER)
            ):
                continue
            covered = self.two_hop.get(neighbour, set()) - sym - {self.node.node_id}
            coverage[neighbour] = covered
            strict |= covered
        mprs: Set[int] = set()
        uncovered = set(strict)
        for neighbour, covered in sorted(coverage.items()):
            if (
                self.neighbour_willingness.get(neighbour, int(Willingness.DEFAULT))
                == int(Willingness.ALWAYS)
            ):
                mprs.add(neighbour)
                uncovered -= covered
        while uncovered:
            best, best_key = None, None
            for neighbour, covered in sorted(coverage.items()):
                if neighbour in mprs:
                    continue
                gain = len(covered & uncovered)
                if gain == 0:
                    continue
                key = (
                    self.neighbour_willingness.get(
                        neighbour, int(Willingness.DEFAULT)
                    ),
                    gain,
                    len(covered),
                    -neighbour,
                )
                if best_key is None or key > best_key:
                    best, best_key = neighbour, key
            if best is None:
                break
            mprs.add(best)
            uncovered -= coverage[best]
        self.mpr_set = mprs

    # -- route calculation (inline BFS) -----------------------------------------------------------

    def _recalculate_routes(self, now: float) -> None:
        self._purge_topology(now)
        local = self.node.node_id
        sym = {n for n, (_a, s) in self.links.items() if s > now}
        graph: Dict[int, Set[int]] = {local: set(sym)}
        for neighbour in sym:
            graph.setdefault(neighbour, set()).add(local)
            for two_hop in self.two_hop.get(neighbour, set()):
                graph[neighbour].add(two_hop)
                graph.setdefault(two_hop, set())
        for last_hop, destination in self.topology:
            graph.setdefault(last_hop, set()).add(destination)
            graph.setdefault(destination, set())
        routes: Dict[int, Tuple[int, int]] = {}
        visited = {local}
        frontier = [(n, n, 1) for n in sorted(graph[local])]
        index = 0
        while index < len(frontier):
            node, first_hop, distance = frontier[index]
            index += 1
            if node in visited:
                continue
            visited.add(node)
            routes[node] = (first_hop, distance)
            for successor in sorted(graph.get(node, ())):
                if successor not in visited:
                    frontier.append((successor, first_hop, distance + 1))
        if routes != self.routes:
            self.routes = routes
            self.node.kernel_table.replace_all(
                [
                    KernelRoute(destination, next_hop, metric=hops)
                    for destination, (next_hop, hops) in sorted(routes.items())
                ]
            )

    # -- inspection ------------------------------------------------------------------------------------

    def routing_table(self) -> Dict[int, Tuple[int, int]]:
        return dict(self.routes)
