"""PacketBB: the generalized MANET packet/message format.

MANETKit bases its event structure on "the increasingly-used PacketBB packet
format" (paper section 4.2, citing draft-ietf-manet-packetbb, which became
RFC 5444).  Every control message exchanged by the protocols in this
repository — OLSR HELLOs and TCs, DYMO Routing Elements and RERRs, AODV
messages, and the monolithic comparators' traffic alike — is carried in this
format.

The format is hierarchical:

* a :class:`~repro.packetbb.packet.Packet` carries an optional sequence
  number, an optional packet-level TLV block and a list of messages;
* a :class:`~repro.packetbb.message.Message` has a type, optional
  originator / hop-limit / hop-count / sequence-number header fields, a
  message-level TLV block and a list of address blocks;
* an :class:`~repro.packetbb.address.AddressBlock` holds a list of
  addresses compressed against a shared head, with an attached TLV block
  whose TLVs may target individual address indices;
* a :class:`~repro.packetbb.tlv.TLV` is a type/value attribute.

Serialization is to a compact binary encoding (:func:`encode`), parsing back
via :func:`decode`; the two are exact inverses, which the property-based
tests verify.
"""

from repro.packetbb.address import Address, AddressBlock
from repro.packetbb.tlv import TLV, TLVBlock
from repro.packetbb.message import Message, MsgType
from repro.packetbb.packet import Packet, decode, encode

__all__ = [
    "Address",
    "AddressBlock",
    "TLV",
    "TLVBlock",
    "Message",
    "MsgType",
    "Packet",
    "encode",
    "decode",
]
