"""Addresses and address blocks.

Addresses are fixed-width (4 bytes, IPv4-like) network identifiers.  An
address block stores several addresses compactly by factoring out their
longest common *head* prefix — the RFC 5444 compression that matters in
MANET control traffic, where advertised addresses usually share a network
prefix.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Optional, Tuple

from repro.errors import ParseError, SerializationError
from repro.packetbb.tlv import TLVBlock

ADDR_LEN = 4
_MAX_ADDR = (1 << (8 * ADDR_LEN)) - 1


class Address:
    """A fixed-width network address (4 bytes, rendered dotted-quad).

    Addresses are value objects and treated as immutable everywhere; the
    wire-facing constructors intern them (control traffic mentions the same
    few dozen nodes over and over, so parsing allocates from a small pool
    instead of churning one object per mention).
    """

    __slots__ = ("value",)

    #: interning pool for the wire-facing constructors (Address only —
    #: subclasses are excluded so the pool can never hand back the wrong
    #: type).  Bounded as a safety net; a simulation's address universe is
    #: its node count.
    _intern: dict = {}
    _INTERN_LIMIT = 65536

    def __init__(self, value: int) -> None:
        if not 0 <= value <= _MAX_ADDR:
            raise ValueError(f"address out of range: {value}")
        self.value = value

    @classmethod
    def _interned(cls, value: int) -> "Address":
        pool = cls._intern
        address = pool.get(value)
        if address is None:
            address = cls(value)
            if len(pool) < cls._INTERN_LIMIT:
                pool[value] = address
        return address

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_string(cls, text: str) -> "Address":
        parts = text.split(".")
        if len(parts) != ADDR_LEN:
            raise ValueError(f"malformed address {text!r}")
        value = 0
        for part in parts:
            octet = int(part)
            if not 0 <= octet <= 255:
                raise ValueError(f"malformed address {text!r}")
            value = (value << 8) | octet
        return cls(value)

    @classmethod
    def from_node_id(cls, node_id: int) -> "Address":
        """Map a simulator node id into the 10.0.0.0/8 test network."""
        if not 0 <= node_id <= 0x00FFFFFF:
            raise ValueError(f"node id out of range: {node_id}")
        value = (10 << 24) | node_id
        if cls is Address:
            return cls._interned(value)
        return cls(value)

    @property
    def node_id(self) -> int:
        """Inverse of :meth:`from_node_id`."""
        return self.value & 0x00FFFFFF

    # -- codec ------------------------------------------------------------

    def to_bytes(self) -> bytes:
        return struct.pack("!I", self.value)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Address":
        if len(data) != ADDR_LEN:
            raise ParseError(f"address needs {ADDR_LEN} bytes, got {len(data)}")
        value = struct.unpack("!I", data)[0]
        if cls is Address:
            return cls._interned(value)
        return cls(value)

    # -- value semantics ----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Address) and self.value == other.value

    def __lt__(self, other: "Address") -> bool:
        return self.value < other.value

    def __hash__(self) -> int:
        return hash(self.value)

    def __str__(self) -> str:
        octets = [(self.value >> shift) & 0xFF for shift in (24, 16, 8, 0)]
        return ".".join(str(o) for o in octets)

    def __repr__(self) -> str:
        return f"Address('{self}')"


def _common_head(encoded: List[bytes]) -> bytes:
    """Longest common prefix of the encoded addresses."""
    if not encoded:
        return b""
    head = encoded[0]
    for addr in encoded[1:]:
        limit = min(len(head), len(addr))
        i = 0
        while i < limit and head[i] == addr[i]:
            i += 1
        head = head[:i]
        if not head:
            break
    return head


class AddressBlock:
    """A compressed list of addresses with an attached TLV block."""

    _HAS_HEAD = 0x80

    def __init__(
        self,
        addresses: Iterable[Address],
        tlv_block: Optional[TLVBlock] = None,
    ) -> None:
        self.addresses: List[Address] = list(addresses)
        if len(self.addresses) > 255:
            raise SerializationError("address block limited to 255 addresses")
        self.tlv_block = tlv_block if tlv_block is not None else TLVBlock()

    def __len__(self) -> int:
        return len(self.addresses)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AddressBlock)
            and self.addresses == other.addresses
            and self.tlv_block == other.tlv_block
        )

    def __repr__(self) -> str:
        return f"AddressBlock({[str(a) for a in self.addresses]}, {self.tlv_block!r})"

    # -- codec ---------------------------------------------------------------

    def serialize(self) -> bytes:
        encoded = [addr.to_bytes() for addr in self.addresses]
        head = _common_head(encoded)
        # A full-length head would leave zero mid bytes; cap so every
        # address still contributes at least one byte (simplifies parsing
        # of blocks containing one repeated address).
        if len(head) >= ADDR_LEN:
            head = head[: ADDR_LEN - 1]
        out = bytearray()
        out.append(len(self.addresses))
        flags = self._HAS_HEAD if head else 0
        out.append(flags)
        if head:
            out.append(len(head))
            out.extend(head)
        for addr in encoded:
            out.extend(addr[len(head):])
        out.extend(self.tlv_block.serialize())
        return bytes(out)

    @classmethod
    def parse(cls, data: bytes, offset: int) -> Tuple["AddressBlock", int]:
        if offset + 2 > len(data):
            raise ParseError("truncated address block header")
        count = data[offset]
        flags = data[offset + 1]
        offset += 2
        head = b""
        if flags & cls._HAS_HEAD:
            if offset >= len(data):
                raise ParseError("truncated address block head length")
            head_len = data[offset]
            offset += 1
            if head_len >= ADDR_LEN:
                raise ParseError(f"address head too long: {head_len}")
            if offset + head_len > len(data):
                raise ParseError("truncated address block head")
            head = data[offset : offset + head_len]
            offset += head_len
        mid_len = ADDR_LEN - len(head)
        addresses = []
        for _ in range(count):
            if offset + mid_len > len(data):
                raise ParseError("truncated address in block")
            addresses.append(
                Address.from_bytes(head + data[offset : offset + mid_len])
            )
            offset += mid_len
        tlv_block, offset = TLVBlock.parse(data, offset)
        return cls(addresses, tlv_block), offset
