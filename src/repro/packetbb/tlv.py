"""TLVs (type-length-value attributes) and TLV blocks.

TLVs carry all non-address payload in PacketBB: link codes and willingness
in HELLOs, ANSN in TCs, sequence numbers attached to accumulated addresses
in DYMO Routing Elements, residual-power advertisements, and so on.  A TLV
may optionally target a range of address indices within the enclosing
address block (``index_start``/``index_stop``), which is how per-address
attributes such as DYMO's per-hop sequence numbers are expressed.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Optional, Tuple

from repro.errors import ParseError, SerializationError


class TLV:
    """One type/value attribute."""

    _HAS_VALUE = 0x80
    _HAS_INDEX = 0x40

    __slots__ = ("tlv_type", "value", "index_start", "index_stop")

    def __init__(
        self,
        tlv_type: int,
        value: bytes = b"",
        index_start: Optional[int] = None,
        index_stop: Optional[int] = None,
    ) -> None:
        if not 0 <= tlv_type <= 255:
            raise SerializationError(f"TLV type out of range: {tlv_type}")
        if len(value) > 0xFFFF:
            raise SerializationError(f"TLV value too long: {len(value)} bytes")
        if (index_start is None) != (index_stop is None):
            raise SerializationError("index_start and index_stop come together")
        if index_start is not None:
            if not 0 <= index_start <= index_stop <= 255:  # type: ignore[operator]
                raise SerializationError(
                    f"bad TLV index range: [{index_start}, {index_stop}]"
                )
        self.tlv_type = tlv_type
        self.value = bytes(value)
        self.index_start = index_start
        self.index_stop = index_stop

    # -- typed-value conveniences ------------------------------------------

    #: interning pool for index-free integer TLVs — link codes and
    #: willingness values recur in every HELLO a node ever sends, so the
    #: emit hot path reuses one object per (type, value, width) instead of
    #: packing a fresh one each interval.  TLVs are immutable after
    #: construction (slots; the value is copied to ``bytes``), which makes
    #: sharing safe.  TLV only: subclasses bypass the pool.
    _int_intern: dict = {}
    _INT_INTERN_LIMIT = 4096

    @classmethod
    def of_int(
        cls,
        tlv_type: int,
        number: int,
        width: int = 4,
        index_start: Optional[int] = None,
        index_stop: Optional[int] = None,
    ) -> "TLV":
        """Build a TLV holding an unsigned big-endian integer."""
        if index_start is None and cls is TLV:
            key = (tlv_type, number, width)
            pool = cls._int_intern
            tlv = pool.get(key)
            if tlv is None:
                fmt = {1: "!B", 2: "!H", 4: "!I", 8: "!Q"}[width]
                tlv = cls(tlv_type, struct.pack(fmt, number))
                if len(pool) < cls._INT_INTERN_LIMIT:
                    pool[key] = tlv
            return tlv
        fmt = {1: "!B", 2: "!H", 4: "!I", 8: "!Q"}[width]
        return cls(
            tlv_type,
            struct.pack(fmt, number),
            index_start=index_start,
            index_stop=index_stop,
        )

    def as_int(self) -> int:
        """Decode the value as an unsigned big-endian integer."""
        return int.from_bytes(self.value, "big")

    @property
    def has_index(self) -> bool:
        return self.index_start is not None

    def covers_index(self, index: int) -> bool:
        """Whether this TLV applies to address index ``index``."""
        if self.index_start is None:
            return True
        return self.index_start <= index <= self.index_stop  # type: ignore[operator]

    # -- value semantics -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TLV)
            and self.tlv_type == other.tlv_type
            and self.value == other.value
            and self.index_start == other.index_start
            and self.index_stop == other.index_stop
        )

    def __hash__(self) -> int:
        return hash((self.tlv_type, self.value, self.index_start, self.index_stop))

    def __repr__(self) -> str:
        index = (
            f" idx=[{self.index_start},{self.index_stop}]" if self.has_index else ""
        )
        return f"TLV(type={self.tlv_type}, value={self.value!r}{index})"

    # -- codec ------------------------------------------------------------------

    def serialize(self) -> bytes:
        flags = 0
        if self.value:
            flags |= self._HAS_VALUE
        if self.has_index:
            flags |= self._HAS_INDEX
        out = bytearray((self.tlv_type, flags))
        if self.has_index:
            out.append(self.index_start)  # type: ignore[arg-type]
            out.append(self.index_stop)  # type: ignore[arg-type]
        if self.value:
            out.extend(struct.pack("!H", len(self.value)))
            out.extend(self.value)
        return bytes(out)

    @classmethod
    def parse(cls, data: bytes, offset: int) -> Tuple["TLV", int]:
        if offset + 2 > len(data):
            raise ParseError("truncated TLV header")
        tlv_type = data[offset]
        flags = data[offset + 1]
        offset += 2
        index_start = index_stop = None
        if flags & cls._HAS_INDEX:
            if offset + 2 > len(data):
                raise ParseError("truncated TLV index range")
            index_start = data[offset]
            index_stop = data[offset + 1]
            offset += 2
        value = b""
        if flags & cls._HAS_VALUE:
            if offset + 2 > len(data):
                raise ParseError("truncated TLV length")
            (length,) = struct.unpack_from("!H", data, offset)
            offset += 2
            if offset + length > len(data):
                raise ParseError("truncated TLV value")
            value = data[offset : offset + length]
            offset += length
        try:
            return cls(tlv_type, value, index_start, index_stop), offset
        except SerializationError as exc:
            raise ParseError(f"invalid TLV on the wire: {exc}") from exc


class TLVBlock:
    """An ordered collection of TLVs with a byte-length framing header."""

    def __init__(self, tlvs: Iterable[TLV] = ()) -> None:
        self.tlvs: List[TLV] = list(tlvs)

    # -- collection conveniences ------------------------------------------

    def add(self, tlv: TLV) -> "TLVBlock":
        self.tlvs.append(tlv)
        return self

    def find(self, tlv_type: int) -> Optional[TLV]:
        """First TLV of the given type, or None."""
        for tlv in self.tlvs:
            if tlv.tlv_type == tlv_type:
                return tlv
        return None

    def find_all(self, tlv_type: int) -> List[TLV]:
        return [tlv for tlv in self.tlvs if tlv.tlv_type == tlv_type]

    def find_for_index(self, tlv_type: int, index: int) -> Optional[TLV]:
        """First TLV of the type whose index range covers ``index``."""
        for tlv in self.tlvs:
            if tlv.tlv_type == tlv_type and tlv.covers_index(index):
                return tlv
        return None

    def __len__(self) -> int:
        return len(self.tlvs)

    def __iter__(self):
        return iter(self.tlvs)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TLVBlock) and self.tlvs == other.tlvs

    def __repr__(self) -> str:
        return f"TLVBlock({self.tlvs!r})"

    # -- codec ------------------------------------------------------------

    def serialize(self) -> bytes:
        body = b"".join(tlv.serialize() for tlv in self.tlvs)
        if len(body) > 0xFFFF:
            raise SerializationError(f"TLV block too large: {len(body)} bytes")
        return struct.pack("!H", len(body)) + body

    @classmethod
    def parse(cls, data: bytes, offset: int) -> Tuple["TLVBlock", int]:
        if offset + 2 > len(data):
            raise ParseError("truncated TLV block length")
        (length,) = struct.unpack_from("!H", data, offset)
        offset += 2
        end = offset + length
        if end > len(data):
            raise ParseError("truncated TLV block body")
        tlvs = []
        while offset < end:
            tlv, offset = TLV.parse(data, offset)
            tlvs.append(tlv)
        if offset != end:
            raise ParseError("TLV block length does not match contents")
        return cls(tlvs), offset
