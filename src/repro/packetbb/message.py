"""PacketBB messages.

A message is the protocol-visible unit: it names a message *type* (HELLO,
TC, RE, ...), optionally carries the originator address, hop limit, hop
count and a message sequence number, and bundles a message-level TLV block
plus any number of address blocks.

Hop limit / hop count are what flooding strategies manipulate: plain
flooding decrements the hop limit at each relay, MPR flooding additionally
gates on relay selection, and the fish-eye variant rewrites the hop limit of
outgoing TCs according to its scoping sequence (paper section 5.1).
"""

from __future__ import annotations

import struct
from enum import IntEnum
from typing import List, Optional, Tuple

from repro.errors import ParseError, SerializationError
from repro.packetbb.address import Address, AddressBlock
from repro.packetbb.tlv import TLVBlock


class MsgType(IntEnum):
    """Well-known message type numbers used across this repository."""

    HELLO = 1
    TC = 2
    RE = 10          # DYMO Routing Element (carries both RREQ and RREP)
    RERR = 11        # DYMO Route Error
    UERR = 12        # DYMO Unsupported-Element Error
    AODV_RREQ = 20
    AODV_RREP = 21
    AODV_RERR = 22
    POWER = 30       # Residual-power dissemination (power-aware OLSR)


class Message:
    """One PacketBB message."""

    _HAS_ORIG = 0x80
    _HAS_HOP_LIMIT = 0x40
    _HAS_HOP_COUNT = 0x20
    _HAS_SEQNUM = 0x10

    def __init__(
        self,
        msg_type: int,
        originator: Optional[Address] = None,
        hop_limit: Optional[int] = None,
        hop_count: Optional[int] = None,
        seqnum: Optional[int] = None,
        tlv_block: Optional[TLVBlock] = None,
        address_blocks: Optional[List[AddressBlock]] = None,
    ) -> None:
        if not 0 <= msg_type <= 255:
            raise SerializationError(f"message type out of range: {msg_type}")
        if hop_limit is not None and not 0 <= hop_limit <= 255:
            raise SerializationError(f"hop limit out of range: {hop_limit}")
        if hop_count is not None and not 0 <= hop_count <= 255:
            raise SerializationError(f"hop count out of range: {hop_count}")
        if seqnum is not None and not 0 <= seqnum <= 0xFFFF:
            raise SerializationError(f"message seqnum out of range: {seqnum}")
        self.msg_type = int(msg_type)
        self.originator = originator
        self.hop_limit = hop_limit
        self.hop_count = hop_count
        self.seqnum = seqnum
        self.tlv_block = tlv_block if tlv_block is not None else TLVBlock()
        self.address_blocks: List[AddressBlock] = (
            list(address_blocks) if address_blocks is not None else []
        )

    # -- relay bookkeeping ----------------------------------------------------

    def decrement_hop_limit(self) -> "Message":
        """Account for one relay hop in place (and bump hop count)."""
        if self.hop_limit is not None:
            if self.hop_limit == 0:
                raise SerializationError("hop limit already zero")
            self.hop_limit -= 1
        if self.hop_count is not None:
            self.hop_count += 1
        return self

    @property
    def forwardable(self) -> bool:
        """Whether a relay may propagate this message further."""
        return self.hop_limit is None or self.hop_limit > 0

    def all_addresses(self) -> List[Address]:
        """Every address across all blocks, in wire order."""
        return [addr for block in self.address_blocks for addr in block.addresses]

    # -- value semantics --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Message)
            and self.msg_type == other.msg_type
            and self.originator == other.originator
            and self.hop_limit == other.hop_limit
            and self.hop_count == other.hop_count
            and self.seqnum == other.seqnum
            and self.tlv_block == other.tlv_block
            and self.address_blocks == other.address_blocks
        )

    def __repr__(self) -> str:
        try:
            label = MsgType(self.msg_type).name
        except ValueError:
            label = str(self.msg_type)
        return (
            f"<Message {label} orig={self.originator} seq={self.seqnum} "
            f"hl={self.hop_limit} hc={self.hop_count} "
            f"blocks={len(self.address_blocks)}>"
        )

    # -- codec --------------------------------------------------------------------

    def serialize(self) -> bytes:
        flags = 0
        header = bytearray()
        if self.originator is not None:
            flags |= self._HAS_ORIG
            header.extend(self.originator.to_bytes())
        if self.hop_limit is not None:
            flags |= self._HAS_HOP_LIMIT
            header.append(self.hop_limit)
        if self.hop_count is not None:
            flags |= self._HAS_HOP_COUNT
            header.append(self.hop_count)
        if self.seqnum is not None:
            flags |= self._HAS_SEQNUM
            header.extend(struct.pack("!H", self.seqnum))
        body = bytearray()
        body.extend(self.tlv_block.serialize())
        body.append(len(self.address_blocks))
        for block in self.address_blocks:
            body.extend(block.serialize())
        total = 4 + len(header) + len(body)  # type, flags, size16
        if total > 0xFFFF:
            raise SerializationError(f"message too large: {total} bytes")
        return (
            bytes((self.msg_type, flags))
            + struct.pack("!H", total)
            + bytes(header)
            + bytes(body)
        )

    @classmethod
    def parse(cls, data: bytes, offset: int) -> Tuple["Message", int]:
        if offset + 4 > len(data):
            raise ParseError("truncated message header")
        msg_type = data[offset]
        flags = data[offset + 1]
        (size,) = struct.unpack_from("!H", data, offset + 2)
        end = offset + size
        if end > len(data):
            raise ParseError(
                f"message size field ({size}) exceeds available bytes"
            )
        offset += 4
        originator = hop_limit = hop_count = seqnum = None
        if flags & cls._HAS_ORIG:
            if offset + 4 > end:
                raise ParseError("truncated message originator")
            originator = Address.from_bytes(data[offset : offset + 4])
            offset += 4
        if flags & cls._HAS_HOP_LIMIT:
            if offset + 1 > end:
                raise ParseError("truncated hop limit")
            hop_limit = data[offset]
            offset += 1
        if flags & cls._HAS_HOP_COUNT:
            if offset + 1 > end:
                raise ParseError("truncated hop count")
            hop_count = data[offset]
            offset += 1
        if flags & cls._HAS_SEQNUM:
            if offset + 2 > end:
                raise ParseError("truncated message seqnum")
            (seqnum,) = struct.unpack_from("!H", data, offset)
            offset += 2
        tlv_block, offset = TLVBlock.parse(data, offset)
        if offset >= end + 1 and offset > end:
            raise ParseError("message TLV block overruns message")
        if offset + 1 > end:
            raise ParseError("truncated address-block count")
        block_count = data[offset]
        offset += 1
        blocks = []
        for _ in range(block_count):
            block, offset = AddressBlock.parse(data, offset)
            blocks.append(block)
        if offset != end:
            raise ParseError(
                f"message body length mismatch (parsed to {offset}, "
                f"declared end {end})"
            )
        return (
            cls(msg_type, originator, hop_limit, hop_count, seqnum, tlv_block, blocks),
            offset,
        )
