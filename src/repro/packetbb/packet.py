"""PacketBB packets and the top-level encode/decode entry points.

A packet is the on-air unit: several messages from several protocols can be
aggregated into one packet (which is also how the Neighbour Detection CF's
piggybacking service works — it appends extra messages to packets it was
going to transmit anyway).
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from typing import Dict, List, Optional

from repro.errors import ParseError, SerializationError
from repro.packetbb.message import Message
from repro.packetbb.tlv import TLVBlock

_VERSION = 0


class Packet:
    """One on-air PacketBB packet."""

    _HAS_SEQNUM = 0x08
    _HAS_TLV = 0x04

    def __init__(
        self,
        messages: Optional[List[Message]] = None,
        seqnum: Optional[int] = None,
        tlv_block: Optional[TLVBlock] = None,
    ) -> None:
        if seqnum is not None and not 0 <= seqnum <= 0xFFFF:
            raise SerializationError(f"packet seqnum out of range: {seqnum}")
        self.messages: List[Message] = list(messages) if messages else []
        self.seqnum = seqnum
        self.tlv_block = tlv_block

    def add_message(self, message: Message) -> "Packet":
        self.messages.append(message)
        return self

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Packet)
            and self.messages == other.messages
            and self.seqnum == other.seqnum
            and self.tlv_block == other.tlv_block
        )

    def __repr__(self) -> str:
        return f"<Packet seq={self.seqnum} messages={self.messages!r}>"

    # -- codec ------------------------------------------------------------

    def serialize(self) -> bytes:
        flags = _VERSION << 4
        out = bytearray()
        if self.seqnum is not None:
            flags |= self._HAS_SEQNUM
        if self.tlv_block is not None:
            flags |= self._HAS_TLV
        out.append(flags)
        if self.seqnum is not None:
            out.extend(struct.pack("!H", self.seqnum))
        if self.tlv_block is not None:
            out.extend(self.tlv_block.serialize())
        for message in self.messages:
            out.extend(message.serialize())
        return bytes(out)

    @classmethod
    def parse(cls, data: bytes) -> "Packet":
        if not data:
            raise ParseError("empty packet")
        flags = data[0]
        version = flags >> 4
        if version != _VERSION:
            raise ParseError(f"unsupported PacketBB version {version}")
        offset = 1
        seqnum = None
        tlv_block = None
        if flags & cls._HAS_SEQNUM:
            if offset + 2 > len(data):
                raise ParseError("truncated packet seqnum")
            (seqnum,) = struct.unpack_from("!H", data, offset)
            offset += 2
        if flags & cls._HAS_TLV:
            tlv_block, offset = TLVBlock.parse(data, offset)
        messages = []
        while offset < len(data):
            message, offset = Message.parse(data, offset)
            messages.append(message)
        return cls(messages, seqnum, tlv_block)


def encode(packet: Packet) -> bytes:
    """Serialize ``packet`` to its binary wire form."""
    return packet.serialize()


def decode(data: bytes) -> Packet:
    """Parse binary wire data back into a :class:`Packet`."""
    return Packet.parse(data)


#: Bounded payload-keyed parse cache.  A broadcast frame reaches every
#: neighbour with identical bytes, so the n-th receiver can reuse the first
#: receiver's parse.  Keys are the immutable payload bytes themselves
#: (value-hashed), so a corrupted copy of a frame can never alias a clean
#: one.  Callers share the returned object graph and must treat it as
#: read-only — which every receive path in this repository does (relays and
#: path accumulation always build fresh messages).
_DECODE_CACHE: "OrderedDict[bytes, Packet]" = OrderedDict()
_DECODE_CACHE_LIMIT = 256
_decode_stats: Dict[str, int] = {"hits": 0, "misses": 0}


def decode_interned(data: bytes) -> Packet:
    """Like :func:`decode`, but memoised on the payload bytes.

    Only successful parses are cached: a :class:`ParseError` propagates and
    leaves no cache entry, so transiently corrupted frames cost one parse
    attempt each, exactly as before.
    """
    cache = _DECODE_CACHE
    packet = cache.get(data)
    if packet is not None:
        cache.move_to_end(data)
        _decode_stats["hits"] += 1
        return packet
    packet = Packet.parse(data)
    _decode_stats["misses"] += 1
    cache[bytes(data)] = packet
    if len(cache) > _DECODE_CACHE_LIMIT:
        cache.popitem(last=False)
    return packet


def decode_cache_stats() -> Dict[str, int]:
    """Snapshot of the interned-decode hit/miss counters."""
    return dict(_decode_stats)


def reset_decode_cache() -> None:
    """Clear the parse cache and its counters (test/benchmark isolation)."""
    _DECODE_CACHE.clear()
    _decode_stats["hits"] = 0
    _decode_stats["misses"] = 0
