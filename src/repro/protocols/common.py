"""Shared protocol machinery: sequence numbers, TLV vocabulary, metrics.

MANET protocols use circular (wrapping) sequence numbers to order
information freshness.  The comparison below is the signed-difference rule
of RFC 3561 section 6.1 (also used by DYMO and OLSR's ANSN handling): ``a``
is newer than ``b`` iff ``(a - b) mod 2^16`` interpreted as a signed 16-bit
value is positive.

This module also hosts the shared *message observability* helpers used by
every protocol's receive path (OLSR / DYMO / AODV / MPR all dispatch
through :class:`~repro.core.unit.CFSUnit` and the System CF's wire
decoder):

* :class:`MessageMetrics` — cached per-message-type frame/byte counters
  bound to an observability registry (always on; one dict lookup + int add
  per message);
* :class:`HandlerTimer` — a span plus wall-clock histogram around one
  handler dispatch (active only while tracing is enabled, so the paper's
  Table 1 micro path stays unperturbed otherwise).
"""

from __future__ import annotations

import time
from enum import IntEnum
from typing import Any, Dict, Optional

SEQNUM_BITS = 16
SEQNUM_MOD = 1 << SEQNUM_BITS
_HALF = 1 << (SEQNUM_BITS - 1)


def seq_increment(value: int, step: int = 1) -> int:
    """Advance a circular sequence number (skipping nothing; pure mod)."""
    return (value + step) % SEQNUM_MOD


def seq_diff(a: int, b: int) -> int:
    """Signed circular difference ``a - b`` in [-2^15, 2^15)."""
    delta = (a - b) % SEQNUM_MOD
    if delta >= _HALF:
        delta -= SEQNUM_MOD
    return delta


def seq_newer(a: int, b: int) -> bool:
    """Whether sequence number ``a`` is strictly fresher than ``b``."""
    return seq_diff(a, b) > 0


def seq_newer_or_equal(a: int, b: int) -> bool:
    return seq_diff(a, b) >= 0


class MessageMetrics:
    """Per-message-type counters cached for the wire hot path.

    Instances hold one counter pair per message type so the steady-state
    cost of :meth:`note` is a local dict hit plus two integer adds —
    cheap enough to stay enabled even during the Table 1 micro benchmark.
    """

    __slots__ = ("_registry", "_labels", "_cache")

    def __init__(self, registry, **labels: Any) -> None:
        self._registry = registry
        self._labels = labels
        self._cache: Dict[Any, tuple] = {}

    def note(self, msg_type: Any, size: int = 0) -> None:
        cached = self._cache.get(msg_type)
        if cached is None:
            type_name = getattr(msg_type, "name", str(msg_type))
            cached = (
                self._registry.counter(
                    "proto.messages_in", msg_type=type_name, **self._labels
                ),
                self._registry.counter(
                    "proto.message_bytes_in", msg_type=type_name, **self._labels
                ),
            )
            self._cache[msg_type] = cached
        frames, octets = cached
        frames.inc()
        if size:
            octets.inc(size)


class HandlerTimer:
    """Times one protocol handler dispatch: trace span + wall histogram.

    Use :func:`handler_timer` to obtain one; it returns ``None`` whenever
    tracing is disabled so callers can keep the disabled path to a single
    ``is not None`` check.
    """

    __slots__ = ("_obs", "_unit", "_etype", "_span", "_t0")

    def __init__(self, obs, unit: str, etype: str, node: int = -1) -> None:
        self._obs = obs
        self._unit = unit
        self._etype = etype
        self._span = obs.tracer.span(
            "unit.process", unit=unit, etype=etype, node=node
        )
        self._t0 = 0.0

    def __enter__(self) -> "HandlerTimer":
        self._t0 = time.perf_counter()
        self._span.__enter__()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._span.__exit__(*exc_info)
        self._obs.registry.histogram(
            "unit.process_seconds", unit=self._unit, etype=self._etype
        ).observe(time.perf_counter() - self._t0)


def handler_timer(
    obs, unit: str, etype: str, node: int = -1
) -> Optional[HandlerTimer]:
    """A :class:`HandlerTimer` when tracing is on, else ``None``."""
    if obs is not None and obs.tracer is not None and obs.tracer.enabled:
        return HandlerTimer(obs, unit, etype, node)
    return None


class TlvType(IntEnum):
    """TLV type numbers shared across the protocols in this repository."""

    # Generic
    VALIDITY_TIME = 1
    INTERVAL_TIME = 2
    # HELLO / MPR
    LINK_STATUS = 10       # value: LinkCode, applies to an address range
    WILLINGNESS = 11
    # TC / OLSR
    ANSN = 20
    RESIDUAL_POWER = 21    # power-aware variant dissemination
    LINK_COST = 22         # power-aware link costs in HELLOs
    # DYMO
    RE_TYPE = 30           # 0 = RREQ, 1 = RREP
    TARGET_SEQNUM = 31
    ADDR_SEQNUM = 32       # index-scoped: seqnum of an accumulated address
    ADDR_HOPCOUNT = 33
    UNSUPPORTED = 39       # echoed back in UERRs
    # AODV
    RREQ_ID = 40
    ORIG_SEQNUM = 41
    DEST_SEQNUM = 42
    HOPCOUNT = 43
    LIFETIME = 44
    # Critical-extension space: receivers that do not understand a TLV in
    # this range must reject the message with a UERR (DYMO behaviour).
    CRITICAL_BASE = 128


class LinkCode(IntEnum):
    """Link codes carried in HELLO address blocks (RFC 3626 flavour)."""

    ASYM = 1   # heard, not confirmed bidirectional
    SYM = 2    # bidirectional
    MPR = 3    # symmetric and selected as a multipoint relay
    LOST = 4   # recently broken link


class Willingness(IntEnum):
    """A node's willingness to carry traffic for others (RFC 3626)."""

    NEVER = 0
    LOW = 1
    DEFAULT = 3
    HIGH = 6
    ALWAYS = 7
