"""Shared protocol machinery: sequence numbers and the TLV vocabulary.

MANET protocols use circular (wrapping) sequence numbers to order
information freshness.  The comparison below is the signed-difference rule
of RFC 3561 section 6.1 (also used by DYMO and OLSR's ANSN handling): ``a``
is newer than ``b`` iff ``(a - b) mod 2^16`` interpreted as a signed 16-bit
value is positive.
"""

from __future__ import annotations

from enum import IntEnum

SEQNUM_BITS = 16
SEQNUM_MOD = 1 << SEQNUM_BITS
_HALF = 1 << (SEQNUM_BITS - 1)


def seq_increment(value: int, step: int = 1) -> int:
    """Advance a circular sequence number (skipping nothing; pure mod)."""
    return (value + step) % SEQNUM_MOD


def seq_diff(a: int, b: int) -> int:
    """Signed circular difference ``a - b`` in [-2^15, 2^15)."""
    delta = (a - b) % SEQNUM_MOD
    if delta >= _HALF:
        delta -= SEQNUM_MOD
    return delta


def seq_newer(a: int, b: int) -> bool:
    """Whether sequence number ``a`` is strictly fresher than ``b``."""
    return seq_diff(a, b) > 0


def seq_newer_or_equal(a: int, b: int) -> bool:
    return seq_diff(a, b) >= 0


class TlvType(IntEnum):
    """TLV type numbers shared across the protocols in this repository."""

    # Generic
    VALIDITY_TIME = 1
    INTERVAL_TIME = 2
    # HELLO / MPR
    LINK_STATUS = 10       # value: LinkCode, applies to an address range
    WILLINGNESS = 11
    # TC / OLSR
    ANSN = 20
    RESIDUAL_POWER = 21    # power-aware variant dissemination
    LINK_COST = 22         # power-aware link costs in HELLOs
    # DYMO
    RE_TYPE = 30           # 0 = RREQ, 1 = RREP
    TARGET_SEQNUM = 31
    ADDR_SEQNUM = 32       # index-scoped: seqnum of an accumulated address
    ADDR_HOPCOUNT = 33
    UNSUPPORTED = 39       # echoed back in UERRs
    # AODV
    RREQ_ID = 40
    ORIG_SEQNUM = 41
    DEST_SEQNUM = 42
    HOPCOUNT = 43
    LIFETIME = 44
    # Critical-extension space: receivers that do not understand a TLV in
    # this range must reject the message with a UERR (DYMO behaviour).
    CRITICAL_BASE = 128


class LinkCode(IntEnum):
    """Link codes carried in HELLO address blocks (RFC 3626 flavour)."""

    ASYM = 1   # heard, not confirmed bidirectional
    SYM = 2    # bidirectional
    MPR = 3    # symmetric and selected as a multipoint relay
    LOST = 4   # recently broken link


class Willingness(IntEnum):
    """A node's willingness to carry traffic for others (RFC 3626)."""

    NEVER = 0
    LOW = 1
    DEFAULT = 3
    HIGH = 6
    ALWAYS = 7
