"""Ad-hoc routing protocols built inside MANETKit (paper section 5).

* :mod:`repro.protocols.mpr` — Multipoint Relaying: link sensing, relay
  selection and optimised flooding (used by OLSR, shareable with DYMO);
* :mod:`repro.protocols.olsr` — the proactive OLSR protocol plus its
  fish-eye and power-aware variants;
* :mod:`repro.protocols.dymo` — the reactive DYMO protocol plus its
  multipath and optimised-flooding variants;
* :mod:`repro.protocols.aodv` — AODV (the original Java-MANETKit proof of
  concept, section 5), stacked on the Neighbour Detection CF;
* :mod:`repro.protocols.common` — sequence-number arithmetic and shared
  TLV vocabulary.

Importing this package registers every protocol with
:data:`repro.core.manetkit.PROTOCOL_REGISTRY`, enabling
``kit.load_protocol("olsr")``-style dynamic deployment.
"""

from repro.core.manetkit import register_protocol
from repro.protocols.mpr.protocol import MprCF
from repro.protocols.olsr.protocol import OlsrCF
from repro.protocols.dymo.protocol import DymoCF
from repro.protocols.aodv.protocol import AodvCF

register_protocol("mpr", MprCF)
register_protocol("olsr", OlsrCF)
register_protocol("dymo", DymoCF)
register_protocol("aodv", AodvCF)

__all__ = ["MprCF", "OlsrCF", "DymoCF", "AodvCF"]
