"""Hybrid protocols by composition (paper sections 1, 2 and 7).

The paper lists hybrid protocols (e.g. ZRP [14]) as the third class of
ad-hoc routing — "employing proactive routing within scoped domains and
reactive routing across domains" — and names "the hybridisation of
protocols" as future work that the framework's composition model should
make cheap.  :mod:`repro.protocols.hybrid.zrp` delivers exactly that: a
ZRP-style hybrid assembled *entirely from existing CFs* (OLSR + MPR for
the intrazone plane, DYMO for the interzone plane, the fish-eye scoping
component to bound the proactive zone), with no new protocol logic.
"""

from repro.protocols.hybrid.zrp import ZoneRoutingHybrid, deploy_zrp

__all__ = ["ZoneRoutingHybrid", "deploy_zrp"]
