"""A ZRP-style hybrid: scoped proactive zone + reactive interzone routing.

The composition (all existing components, which is the point):

* **intrazone plane** — OLSR stacked on MPR, with a constant-TTL fish-eye
  unit interposed on ``TC_OUT`` so topology dissemination stops at the
  zone radius.  Every node proactively knows every destination within
  ``zone_radius`` hops; the kernel table always holds those routes.
* **interzone plane** — DYMO with MPR-optimised flooding (the MPR CF is
  shared with the intrazone plane).  A destination outside the zone has no
  kernel route, so the very first data packet trips the NetLink
  ``NO_ROUTE`` hook and a reactive discovery — no extra glue needed: the
  division of labour falls out of the kernel-table handoff.

Differences from full ZRP [14] (documented simplifications):

* interzone route queries are flooded via MPR relaying rather than ZRP's
  bordercast tree (BRP); MPR relaying is the closest mechanism available
  in the composition and serves the same "don't re-query the interior"
  purpose;
* zone membership is implicit (whoever the scoped TCs reach) rather than
  maintained by a dedicated IARP neighbour table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.protocols.olsr.fisheye import FishEyeComponent

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.manetkit import ManetKit


@dataclass
class ZoneStats:
    """Observability for the hybrid's division of labour."""

    zone_routes: int = 0
    interzone_discoveries: int = 0


class ZoneRoutingHybrid:
    """Coordinator for one node's ZRP-style deployment."""

    def __init__(
        self,
        deployment: "ManetKit",
        zone_radius: int = 2,
        hello_interval: float = 0.5,
        tc_interval: float = 1.0,
        route_timeout: float = 10.0,
    ) -> None:
        if zone_radius < 1:
            raise ValueError(f"zone radius must be >= 1: {zone_radius}")
        self.deployment = deployment
        self.zone_radius = zone_radius
        self.hello_interval = hello_interval
        self.tc_interval = tc_interval
        self.route_timeout = route_timeout
        self._deployed = False

    # -- assembly -------------------------------------------------------------

    def deploy(self) -> "ZoneRoutingHybrid":
        """Assemble the hybrid from existing CFs."""
        if self._deployed:
            return self
        kit = self.deployment
        # intrazone plane: OLSR on MPR...
        if kit.manager.unit("mpr") is None:
            kit.load_protocol("mpr", hello_interval=self.hello_interval)
        if kit.manager.unit("olsr") is None:
            kit.load_protocol("olsr", tc_interval=self.tc_interval)
        # ...scoped to the zone radius by a constant-TTL fish-eye unit.
        if kit.manager.unit("fisheye") is None:
            scoper = FishEyeComponent(
                kit.ontology,
                ttl_sequence=(self.zone_radius,),
                name="fisheye",
            )
            kit.deploy(scoper)
        # interzone plane: DYMO flooding through the shared MPR CF.
        if kit.manager.unit("dymo") is None:
            kit.load_protocol("dymo", route_timeout=self.route_timeout)
        kit.protocol("dymo").configurator.set("flooding", "mpr")
        self._deployed = True
        return self

    def undeploy(self) -> None:
        kit = self.deployment
        for name in ("dymo", "fisheye", "olsr", "mpr"):
            if kit.manager.unit(name) is not None:
                kit.undeploy(name)
        self._deployed = False

    # -- runtime tuning ----------------------------------------------------------

    def set_zone_radius(self, zone_radius: int) -> None:
        """Grow or shrink the proactive zone at runtime."""
        if zone_radius < 1:
            raise ValueError(f"zone radius must be >= 1: {zone_radius}")
        self.zone_radius = zone_radius
        fisheye = self.deployment.manager.unit("fisheye")
        if fisheye is not None:
            fisheye.ttl_sequence = (zone_radius,)

    # -- observability --------------------------------------------------------------

    def stats(self) -> ZoneStats:
        kit = self.deployment
        olsr = kit.manager.unit("olsr")
        dymo = kit.manager.unit("dymo")
        return ZoneStats(
            zone_routes=len(olsr.routing_table()) if olsr is not None else 0,
            interzone_discoveries=(
                dymo.dymo_state.discoveries_initiated if dymo is not None else 0
            ),
        )

    def in_zone(self, destination: int) -> bool:
        """Whether the destination is proactively known (intrazone)."""
        olsr = self.deployment.manager.unit("olsr")
        return olsr is not None and destination in olsr.routing_table()


def deploy_zrp(
    deployment: "ManetKit",
    zone_radius: int = 2,
    **kwargs,
) -> ZoneRoutingHybrid:
    """Deploy the ZRP-style hybrid on one node."""
    return ZoneRoutingHybrid(deployment, zone_radius, **kwargs).deploy()
