"""Multipoint Relaying (MPR) as a ManetProtocol (paper section 5.1).

"MANETKit's OLSR implementation is built using two separate ManetProtocol
instances: one for OLSR proper and the other for an underlying
implementation of Multipoint Relaying that is used by OLSR.  MPR is
responsible for link sensing and relay selection, and maintains state in
its S component to underpin these."

The MPR CF is also directly shareable with a co-deployed DYMO instance
(optimised-flooding variant, section 5.2), "thus leading to a leaner
deployment".
"""

from repro.protocols.mpr.state import LinkEntry, MprState
from repro.protocols.mpr.calculator import MprCalculator
from repro.protocols.mpr.hysteresis import HysteresisPolicy
from repro.protocols.mpr.handlers import MprHelloGenerator, MprHelloHandler, WillingnessHandler
from repro.protocols.mpr.forward import MprForward
from repro.protocols.mpr.protocol import MprCF

__all__ = [
    "LinkEntry",
    "MprState",
    "MprCalculator",
    "HysteresisPolicy",
    "MprHelloGenerator",
    "MprHelloHandler",
    "WillingnessHandler",
    "MprForward",
    "MprCF",
]
