"""MPR event sources and handlers: HELLO emission/reception, willingness.

HELLO wire format (PacketBB): originator + message seqnum; a WILLINGNESS
message TLV; and up to three address blocks, each tagged with a
block-scoped LINK_STATUS TLV — ``MPR`` (symmetric neighbours selected as
relays), ``SYM`` (other symmetric neighbours) and ``ASYM`` (heard but not
yet confirmed bidirectional).  This is the RFC 3626 link-code scheme
expressed in PacketBB.
"""

from __future__ import annotations

from typing import List, Optional, Set, TYPE_CHECKING

from repro.core.manet_protocol import EventHandlerComponent, EventSourceComponent
from repro.events.event import Event
from repro.packetbb.address import Address, AddressBlock
from repro.packetbb.message import Message, MsgType
from repro.packetbb.tlv import TLV, TLVBlock
from repro.protocols.common import LinkCode, TlvType, Willingness

if TYPE_CHECKING:  # pragma: no cover
    from repro.protocols.mpr.protocol import MprCF


def _address_block(addresses: List[int], code: LinkCode) -> AddressBlock:
    block = AddressBlock([Address.from_node_id(a) for a in addresses])
    block.tlv_block.add(TLV.of_int(TlvType.LINK_STATUS, int(code), width=1))
    return block


class MprHelloGenerator(EventSourceComponent):
    """Emits the periodic link-sensing HELLO."""

    def __init__(self, cf: "MprCF", interval: float, jitter: float,
                 initial_delay: Optional[float] = None) -> None:
        super().__init__("hello-generator", interval, jitter, initial_delay)
        self.cf = cf
        self._seqnum = 0

    def generate(self) -> None:
        cf = self.cf
        now = cf.deployment.now
        cf.run_housekeeping(now)
        state = cf.mpr_state
        self._seqnum = (self._seqnum + 1) & 0xFFFF

        sym = set(state.symmetric_neighbours(now))
        mprs = state.mpr_set & sym
        blocks = []
        if mprs:
            blocks.append(_address_block(sorted(mprs), LinkCode.MPR))
        plain_sym = sorted(sym - mprs)
        if plain_sym:
            blocks.append(_address_block(plain_sym, LinkCode.SYM))
        asym = state.asym_only_neighbours(now)
        if asym:
            blocks.append(_address_block(asym, LinkCode.ASYM))

        tlvs = TLVBlock(
            [TLV.of_int(TlvType.WILLINGNESS, state.own_willingness, width=1)]
        )
        message = Message(
            MsgType.HELLO,
            originator=Address.from_node_id(cf.local_address),
            hop_limit=1,
            hop_count=0,
            seqnum=self._seqnum,
            tlv_block=tlvs,
            address_blocks=blocks,
        )
        cf.send_message("HELLO_OUT", message)


class MprHelloHandler(EventHandlerComponent):
    """Processes received HELLOs: link sensing + 2-hop + selector tracking.

    The power-aware variant replaces this component with a version that
    additionally derives transmission-power link costs (section 5.1).
    """

    handles = ("HELLO_IN",)

    def __init__(self, cf: "MprCF", name: str = "hello-handler") -> None:
        super().__init__(name)
        self.cf = cf

    # Hook for the power-aware subclass.
    def link_cost(self, message: Message, sender: int) -> float:
        return 1.0

    def handle(self, event: Event) -> None:
        message: Message = event.payload
        cf = self.cf
        sender = event.source
        if sender is None and message.originator is not None:
            sender = message.originator.node_id
        if sender is None or sender == cf.local_address:
            return
        now = event.timestamp
        state = cf.mpr_state
        validity = cf.link_hold_time()

        is_new_link = sender not in state.links
        link = state.ensure_link(sender)
        link.asym_until = now + validity
        link.last_heard = now
        link.cost = self.link_cost(message, sender)
        cf.hysteresis.on_hello_received(link)

        # Parse address blocks by link code.
        sym_of_sender: Set[int] = set()
        selected_us = False
        we_are_listed = False
        for block in message.address_blocks:
            status_tlv = block.tlv_block.find(TlvType.LINK_STATUS)
            code = status_tlv.as_int() if status_tlv is not None else int(LinkCode.SYM)
            listed = {a.node_id for a in block.addresses}
            if cf.local_address in listed:
                we_are_listed = True
                if code == int(LinkCode.MPR):
                    selected_us = True
            if code in (int(LinkCode.SYM), int(LinkCode.MPR)):
                sym_of_sender |= listed

        newly_symmetric = we_are_listed and not link.is_symmetric(now)
        if we_are_listed:
            # The sender hears us and we hear it: the link is symmetric.
            link.sym_until = now + validity
        two_hop = sym_of_sender - {cf.local_address}
        if state.two_hop.get(sender) != two_hop:
            state.two_hop[sender] = two_hop
            state.nhood_version += 1
        if is_new_link or newly_symmetric:
            # Answer promptly so the new link becomes symmetric fast.
            cf.maybe_trigger_hello()

        will_tlv = message.tlv_block.find(TlvType.WILLINGNESS)
        if will_tlv is not None:
            willingness = will_tlv.as_int()
            if state.willingness_of.get(sender) != willingness:
                state.willingness_of[sender] = willingness
                state.will_version += 1

        if selected_us:
            state.note_selector(sender, now + validity)

        cf.after_neighbourhood_update(now)


class WillingnessHandler(EventHandlerComponent):
    """Derives own willingness from POWER_STATUS context events.

    "POWER_STATUS events [...] report the node's current battery levels;
    they are used to dynamically determine the willingness of a node acting
    as a relay to forward messages on behalf of its neighbours, this
    'willingness' metric being factored into the relay selection process"
    (section 5.1).
    """

    handles = ("POWER_STATUS",)

    #: battery-level floor for each willingness tier, scanned in order.
    TIERS = (
        (0.8, Willingness.HIGH),
        (0.5, Willingness.DEFAULT),
        (0.2, Willingness.LOW),
        (0.0, Willingness.NEVER),
    )

    def __init__(self, cf: "MprCF") -> None:
        super().__init__("willingness-handler")
        self.cf = cf

    def handle(self, event: Event) -> None:
        battery = event.payload.get("battery")
        if battery is None:
            return
        willingness = int(Willingness.NEVER)
        for floor, tier in self.TIERS:
            if battery >= floor:
                willingness = int(tier)
                break
        state = self.cf.mpr_state
        if willingness != state.own_willingness:
            state.own_willingness = willingness
