"""The MPR S element: link set, neighbourhood, relay sets, duplicate set.

This is the largest state component in the repository (the paper notes the
same of its C counterpart, Table 3 footnote 4): several distinct tables
back the different views the protocol needs — raw links with timeouts,
symmetric neighbours with willingness, the strict 2-hop set, the MPR set we
select, the selector set that selects *us*, and the flooding duplicate set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.manet_protocol import StateComponent
from repro.protocols.common import Willingness


@dataclass
class LinkEntry:
    """One sensed link to a 1-hop neighbour."""

    neighbour: int
    asym_until: float = 0.0
    sym_until: float = 0.0
    last_heard: float = 0.0
    quality: float = 0.0      # hysteresis link quality estimate
    pending: bool = False     # hysteresis: heard but not yet trusted
    cost: float = 1.0         # power-aware variant: transmission cost

    def is_symmetric(self, now: float) -> bool:
        return self.sym_until > now and not self.pending

    def is_heard(self, now: float) -> bool:
        return self.asym_until > now

    def status(self, now: float) -> str:
        if self.is_symmetric(now):
            return "sym"
        if self.is_heard(now):
            return "asym"
        return "lost"


class MprState(StateComponent):
    """S element of the MPR CF."""

    DUP_HOLD = 30.0

    def __init__(self) -> None:
        super().__init__("mpr-state")
        self.links: Dict[int, LinkEntry] = {}
        self.willingness_of: Dict[int, int] = {}
        #: symmetric neighbour -> the set of its symmetric neighbours
        self.two_hop: Dict[int, Set[int]] = {}
        self.mpr_set: Set[int] = set()
        #: nodes that selected us as their MPR -> expiry time
        self.selectors: Dict[int, float] = {}
        #: flooding duplicate set: (originator, seqnum) -> expiry
        self.duplicates: Dict[Tuple[int, int], float] = {}
        self.own_willingness: int = int(Willingness.DEFAULT)
        #: bumped whenever link-set membership or 2-hop *content* changes —
        #: HELLOs that merely refresh expiries keep the version, so
        #: downstream computations (route tables) can be cached against it
        #: together with the momentary symmetric-neighbour set.
        self.nhood_version = 0
        #: bumped when a neighbour's advertised willingness *value* changes
        #: (kept separate from ``nhood_version`` because willingness feeds
        #: MPR selection but not route computation).
        self.will_version = 0
        self.provide_interface("IMPRState", "IMPRState")

    # -- link queries -------------------------------------------------------

    def link(self, neighbour: int) -> Optional[LinkEntry]:
        return self.links.get(neighbour)

    def ensure_link(self, neighbour: int) -> LinkEntry:
        entry = self.links.get(neighbour)
        if entry is None:
            entry = LinkEntry(neighbour)
            self.links[neighbour] = entry
        return entry

    def symmetric_neighbours(self, now: float) -> List[int]:
        return sorted(
            n for n, link in self.links.items() if link.is_symmetric(now)
        )

    def heard_neighbours(self, now: float) -> List[int]:
        return sorted(n for n, link in self.links.items() if link.is_heard(now))

    def asym_only_neighbours(self, now: float) -> List[int]:
        return sorted(
            n
            for n, link in self.links.items()
            if link.is_heard(now) and not link.is_symmetric(now)
        )

    def expire_links(self, now: float) -> List[int]:
        """Drop fully expired links; returns the lost neighbours."""
        lost = [n for n, link in self.links.items() if not link.is_heard(now)]
        for neighbour in lost:
            del self.links[neighbour]
            self.two_hop.pop(neighbour, None)
            self.willingness_of.pop(neighbour, None)
            self.mpr_set.discard(neighbour)
        if lost:
            self.nhood_version += 1
        return lost

    # -- 2-hop queries --------------------------------------------------------

    def strict_two_hop(self, now: float, self_address: int) -> Set[int]:
        """Nodes exactly two hops away through symmetric neighbours."""
        sym = set(self.symmetric_neighbours(now))
        reached: Set[int] = set()
        for neighbour in sym:
            reached |= self.two_hop.get(neighbour, set())
        return reached - sym - {self_address}

    def coverage(self, now: float, self_address: int) -> Dict[int, Set[int]]:
        """For each symmetric neighbour, which strict-2-hop nodes it covers."""
        strict = self.strict_two_hop(now, self_address)
        return {
            neighbour: (self.two_hop.get(neighbour, set()) & strict)
            for neighbour in self.symmetric_neighbours(now)
        }

    # -- selector / willingness -----------------------------------------------

    def active_selectors(self, now: float) -> List[int]:
        return sorted(n for n, until in self.selectors.items() if until > now)

    def note_selector(self, neighbour: int, until: float) -> None:
        self.selectors[neighbour] = until

    def expire_selectors(self, now: float) -> None:
        for neighbour in [n for n, t in self.selectors.items() if t <= now]:
            del self.selectors[neighbour]

    def willingness(self, neighbour: int) -> int:
        return self.willingness_of.get(neighbour, int(Willingness.DEFAULT))

    # -- duplicate set ------------------------------------------------------------

    def is_duplicate(self, originator: int, seqnum: int, msg_type: int = 0) -> bool:
        # The key includes the message type: different generators on one
        # node use independent seqnum spaces, so a TC and a POWER message
        # from the same originator must never shadow each other.
        return (originator, msg_type, seqnum) in self.duplicates

    def note_message(
        self, originator: int, seqnum: int, now: float, msg_type: int = 0
    ) -> None:
        self.duplicates[(originator, msg_type, seqnum)] = now + self.DUP_HOLD
        if len(self.duplicates) > 4096:
            self.gc_duplicates(now)

    def gc_duplicates(self, now: float) -> None:
        for key in [k for k, t in self.duplicates.items() if t <= now]:
            del self.duplicates[key]

    def purge_duplicates(self, msg_type: int) -> None:
        """Forget one message type's flooding history.

        Called when the type's registrant is undeployed: a re-deployed
        protocol restarts its seqnum space, and the stale entries would
        otherwise suppress its first ``DUP_HOLD`` seconds of floods at
        every relay hop — a fleet-wide blackout after a live protocol
        switch.
        """
        for key in [k for k in self.duplicates if k[1] == msg_type]:
            del self.duplicates[key]

    # -- state transfer ----------------------------------------------------------

    def get_state(self) -> Dict[str, object]:
        return {
            "links": {
                n: (e.asym_until, e.sym_until, e.last_heard, e.quality,
                    e.pending, e.cost)
                for n, e in self.links.items()
            },
            "willingness_of": dict(self.willingness_of),
            "two_hop": {n: set(s) for n, s in self.two_hop.items()},
            "mpr_set": set(self.mpr_set),
            "selectors": dict(self.selectors),
            "own_willingness": self.own_willingness,
        }

    def set_state(self, state: Dict[str, object]) -> None:
        links = state.get("links")
        if isinstance(links, dict):
            for n, (asym, sym, heard, quality, pending, cost) in links.items():
                self.links[n] = LinkEntry(n, asym, sym, heard, quality, pending, cost)
        for attr in ("willingness_of", "two_hop", "mpr_set", "selectors"):
            value = state.get(attr)
            if value is not None:
                getattr(self, attr).update(value) if isinstance(
                    getattr(self, attr), dict
                ) else getattr(self, attr).update(value)
        if "own_willingness" in state:
            self.own_willingness = state["own_willingness"]  # type: ignore[assignment]
        self.nhood_version += 1
        self.will_version += 1
