"""MPR selection.

The greedy set-cover heuristic of RFC 3626 section 8.3.1: select, among the
symmetric 1-hop neighbours, a minimal set of relays covering every strict
2-hop neighbour — preferring higher willingness, then greater coverage of
still-uncovered 2-hop nodes, then higher degree.

Selection runs on every HELLO received and before every HELLO sent, so at
scale it is a hot path.  :meth:`MprCalculator.select` therefore memoises
against a version fingerprint (symmetric set, neighbourhood version,
willingness version) and, on a miss, repairs its cached coverage structures
incrementally — work scoped to the neighbours whose 2-hop listings actually
changed and the strict-2-hop nodes they touch, never the whole
neighbourhood.  The greedy cover itself is re-run in full on the repaired
coverage: its choices are globally order-dependent (each pick changes every
later gain), so a localized re-selection would not be behaviour-identical.
:meth:`compute` remains the from-scratch reference; the property suite pins
``select`` to it.

The calculator is a replaceable plug-in: the power-aware OLSR variant swaps
in an energy-weighted version (paper section 5.1), which is implemented in
:mod:`repro.protocols.olsr.power_aware`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.opencom.component import Component
from repro.protocols.common import Willingness
from repro.protocols.mpr.state import MprState


class MprCalculator(Component):
    """The standard (RFC 3626) greedy MPR selection."""

    #: Subclasses whose selection reads inputs outside the version
    #: fingerprint (e.g. link costs) set this False; ``select`` then
    #: degrades to a plain ``compute`` call.
    memoises = True

    def __init__(self, name: str = "mpr-calculator") -> None:
        super().__init__(name)
        self.computations = 0
        #: ``select`` calls answered from the memo without recomputing.
        self.memo_hits = 0
        self._token: Optional[tuple] = None
        self._memo_result: Set[int] = set()
        # Incrementally maintained coverage structures (select path).
        self._sym: Set[int] = set()
        self._blocks: Dict[int, frozenset] = {}
        #: the live 2-hop set object last seen per neighbour — the HELLO
        #: handler replaces the object only when its content changes, so an
        #: identity match proves the block unchanged without comparing it.
        self._raw: Dict[int, object] = {}
        #: inverted index: 2-hop node -> symmetric neighbours listing it.
        self._listers: Dict[int, Set[int]] = {}
        self._strict: Set[int] = set()
        self._coverage: Dict[int, Set[int]] = {}
        self.provide_interface("IMprCalc", "IMprCalc")

    def compute(self, state: MprState, now: float, self_address: int) -> Set[int]:
        """Return the new MPR set (does not mutate ``state``).

        From-scratch reference path; ``select`` is the cached equivalent.
        """
        self.computations += 1
        return self._select_from_coverage(state, state.coverage(now, self_address))

    def select(
        self,
        state: MprState,
        now: float,
        self_address: int,
        sym: Optional[Iterable[int]] = None,
    ) -> Set[int]:
        """Memoised, incrementally-repaired equivalent of :meth:`compute`.

        ``sym`` is the momentary symmetric-neighbour set when the caller
        already has it (avoids a second link-set scan).
        """
        if not self.memoises:
            return self.compute(state, now, self_address)
        if sym is None:
            sym_t: Tuple[int, ...] = tuple(state.symmetric_neighbours(now))
        else:
            sym_t = tuple(sorted(sym))
        token = (sym_t, state.nhood_version, state.will_version)
        if token == self._token:
            self.memo_hits += 1
            # Copy: callers hand the result to ``state.mpr_set``, which is
            # mutated elsewhere (link expiry discards from it).
            return set(self._memo_result)
        self._refresh_coverage(state, sym_t, self_address)
        self.computations += 1
        result = self._select_from_coverage(state, self._coverage)
        self._token = token
        self._memo_result = set(result)
        return result

    # -- incremental coverage maintenance ----------------------------------

    def _refresh_coverage(
        self, state: MprState, sym_t: Tuple[int, ...], self_address: int
    ) -> None:
        """Repair coverage for the neighbours affected since the last call."""
        new_sym = set(sym_t)
        prev_sym = self._sym
        blocks = self._blocks
        raw = self._raw
        listers = self._listers
        coverage = self._coverage
        affected: Set[int] = set()

        def unlist(neighbour: int, nodes) -> None:
            for x in nodes:
                entry = listers.get(x)
                if entry is not None:
                    entry.discard(neighbour)
                    if not entry:
                        del listers[x]

        def enlist(neighbour: int, nodes) -> None:
            for x in nodes:
                listers.setdefault(x, set()).add(neighbour)

        for neighbour in prev_sym - new_sym:
            unlist(neighbour, blocks.pop(neighbour, ()))
            raw.pop(neighbour, None)
            coverage.pop(neighbour, None)
        for neighbour in new_sym - prev_sym:
            live = state.two_hop.get(neighbour)
            block = frozenset(live) if live is not None else frozenset()
            blocks[neighbour] = block
            raw[neighbour] = live
            enlist(neighbour, block)
            affected.add(neighbour)
        for neighbour in new_sym & prev_sym:
            live = state.two_hop.get(neighbour)
            if live is raw.get(neighbour):
                continue
            raw[neighbour] = live
            new_block = frozenset(live) if live is not None else frozenset()
            old_block = blocks[neighbour]
            if new_block == old_block:
                continue
            blocks[neighbour] = new_block
            enlist(neighbour, new_block - old_block)
            unlist(neighbour, old_block - new_block)
            affected.add(neighbour)

        new_strict = set(listers) - new_sym - {self_address}
        # Any neighbour listing a node whose strict status flipped must have
        # that node added to / dropped from its coverage entry.
        for x in self._strict ^ new_strict:
            affected |= listers.get(x, set())
        self._strict = new_strict
        for neighbour in affected:
            block = blocks.get(neighbour)
            if block is not None:
                coverage[neighbour] = set(block & new_strict)
        self._sym = new_sym

    # -- the RFC 3626 rules -------------------------------------------------

    def _select_from_coverage(
        self, state: MprState, coverage: Dict[int, Set[int]]
    ) -> Set[int]:
        """Run the selection rules on a coverage map (neighbour -> covered)."""
        # Never relay through unwilling neighbours.
        candidates = {
            n: covered
            for n, covered in coverage.items()
            if state.willingness(n) != int(Willingness.NEVER)
        }
        uncovered: Set[int] = set()
        for covered in candidates.values():
            uncovered |= covered

        mprs: Set[int] = set()
        # Rule 1: WILL_ALWAYS neighbours are always selected.
        for neighbour in candidates:
            if state.willingness(neighbour) == int(Willingness.ALWAYS):
                mprs.add(neighbour)
                uncovered -= candidates[neighbour]
        # Rule 2: neighbours that are the sole cover of some 2-hop node.
        cover_count: Dict[int, int] = {}
        for covered in candidates.values():
            for two_hop in covered:
                cover_count[two_hop] = cover_count.get(two_hop, 0) + 1
        for neighbour, covered in sorted(candidates.items()):
            if neighbour in mprs:
                continue
            if any(cover_count.get(t, 0) == 1 for t in covered & uncovered):
                mprs.add(neighbour)
                uncovered -= covered
        # Rule 3: greedy — repeatedly take the best-scoring neighbour.
        while uncovered:
            best = None
            best_key = None
            for neighbour, covered in sorted(candidates.items()):
                if neighbour in mprs:
                    continue
                gain = len(covered & uncovered)
                if gain == 0:
                    continue
                key = (
                    state.willingness(neighbour),
                    gain,
                    len(covered),
                    -neighbour,  # deterministic tie-break
                )
                if best_key is None or key > best_key:
                    best, best_key = neighbour, key
            if best is None:
                break  # some 2-hop nodes are uncoverable (asymmetric info)
            mprs.add(best)
            uncovered -= candidates[best]
        return mprs
