"""MPR selection.

The greedy set-cover heuristic of RFC 3626 section 8.3.1: select, among the
symmetric 1-hop neighbours, a minimal set of relays covering every strict
2-hop neighbour — preferring higher willingness, then greater coverage of
still-uncovered 2-hop nodes, then higher degree.

The calculator is a replaceable plug-in: the power-aware OLSR variant swaps
in an energy-weighted version (paper section 5.1), which is implemented in
:mod:`repro.protocols.olsr.power_aware`.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.opencom.component import Component
from repro.protocols.common import Willingness
from repro.protocols.mpr.state import MprState


class MprCalculator(Component):
    """The standard (RFC 3626) greedy MPR selection."""

    def __init__(self, name: str = "mpr-calculator") -> None:
        super().__init__(name)
        self.computations = 0
        self.provide_interface("IMprCalc", "IMprCalc")

    def compute(self, state: MprState, now: float, self_address: int) -> Set[int]:
        """Return the new MPR set (does not mutate ``state``)."""
        self.computations += 1
        coverage = state.coverage(now, self_address)
        # Never relay through unwilling neighbours.
        candidates = {
            n: covered
            for n, covered in coverage.items()
            if state.willingness(n) != int(Willingness.NEVER)
        }
        uncovered: Set[int] = set()
        for covered in candidates.values():
            uncovered |= covered

        mprs: Set[int] = set()
        # Rule 1: WILL_ALWAYS neighbours are always selected.
        for neighbour in candidates:
            if state.willingness(neighbour) == int(Willingness.ALWAYS):
                mprs.add(neighbour)
                uncovered -= candidates[neighbour]
        # Rule 2: neighbours that are the sole cover of some 2-hop node.
        cover_count: Dict[int, int] = {}
        for covered in candidates.values():
            for two_hop in covered:
                cover_count[two_hop] = cover_count.get(two_hop, 0) + 1
        for neighbour, covered in sorted(candidates.items()):
            if neighbour in mprs:
                continue
            if any(cover_count.get(t, 0) == 1 for t in covered & uncovered):
                mprs.add(neighbour)
                uncovered -= covered
        # Rule 3: greedy — repeatedly take the best-scoring neighbour.
        while uncovered:
            best = None
            best_key = None
            for neighbour, covered in sorted(candidates.items()):
                if neighbour in mprs:
                    continue
                gain = len(covered & uncovered)
                if gain == 0:
                    continue
                key = (
                    state.willingness(neighbour),
                    gain,
                    len(covered),
                    -neighbour,  # deterministic tie-break
                )
                if best_key is None or key > best_key:
                    best, best_key = neighbour, key
            if best is None:
                break  # some 2-hop nodes are uncoverable (asymmetric info)
            mprs.add(best)
            uncovered -= candidates[best]
        return mprs
