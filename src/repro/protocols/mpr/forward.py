"""The MPR F element: optimised flooding.

Implements the RFC 3626 default forwarding algorithm: a broadcast control
message is retransmitted only by nodes that the previous hop selected as
multipoint relays, after duplicate suppression.  "Multipoint Relaying is
good at reducing control overhead in denser networks" (paper section 2).

Message types to flood are registered dynamically
(:meth:`~repro.protocols.mpr.protocol.MprCF.add_flooded_type`) — OLSR
registers TC, and DYMO's optimised-flooding variant can register its RE
messages the same way.  Relayed re-emissions carry ``meta["relay"]=True``
so that interposed components (e.g. the fish-eye scoper, which must only
rescope *originated* TCs) can tell them apart.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.manet_protocol import ForwardComponent
from repro.events.event import Event
from repro.packetbb.message import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.protocols.mpr.protocol import MprCF


def _relay_copy(message: Message) -> Message:
    """A forwardable copy with hop accounting applied."""
    return Message(
        message.msg_type,
        originator=message.originator,
        hop_limit=None if message.hop_limit is None else message.hop_limit - 1,
        hop_count=None if message.hop_count is None else message.hop_count + 1,
        seqnum=message.seqnum,
        tlv_block=message.tlv_block,
        address_blocks=message.address_blocks,
    )


class MprForward(ForwardComponent):
    """Duplicate-suppressed, selector-gated flooding."""

    def __init__(self, cf: "MprCF") -> None:
        super().__init__("mpr-forward")
        self.cf = cf
        self.relayed = 0
        self.suppressed_duplicates = 0
        self.suppressed_not_selected = 0
        self.provide_interface("IMprFlood", "IMprFlood")

    def consider(self, event: Event, out_event: str) -> bool:
        """Apply the default forwarding algorithm to a received message.

        Returns ``True`` when the message was relayed.  Must run inside the
        protocol's critical section (it is called from an Event Handler).
        """
        message: Message = event.payload
        if message.originator is None or message.seqnum is None:
            return False
        originator = message.originator.node_id
        state = self.cf.mpr_state
        now = event.timestamp
        if originator == self.cf.local_address:
            return False
        if state.is_duplicate(originator, message.seqnum, message.msg_type):
            self.suppressed_duplicates += 1
            return False
        state.note_message(originator, message.seqnum, now, message.msg_type)
        sender = event.source
        if sender is None or sender not in state.active_selectors(now):
            self.suppressed_not_selected += 1
            return False
        if not message.forwardable:
            return False
        if message.hop_count is not None and message.hop_count >= 255:
            # The 8-bit hop count cannot account another hop.  Reachable
            # only via corruption faults (a corrupted hop-count byte);
            # relaying would raise SerializationError and crash the run.
            return False
        self.relayed += 1
        self.cf.emit(out_event, payload=_relay_copy(message), meta={"relay": True})
        return True

    def flood(self, message: Message, out_event: str) -> None:
        """Originate a broadcast through the MPR flooding service.

        Direct-call service used by co-located components (e.g. the
        power-aware variant's ResidualPower disseminator, section 5.1).
        """
        if message.originator is not None and message.seqnum is not None:
            self.cf.mpr_state.note_message(
                message.originator.node_id,
                message.seqnum,
                self.cf.deployment.now,
                message.msg_type,
            )
        self.cf.send_message(out_event, message)
