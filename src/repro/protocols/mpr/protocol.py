"""The MPR CF: assembly of the Multipoint Relaying ManetProtocol.

Event tuple (paper section 5.1): the MPR instance *provides*
``HELLO_OUT``, ``NHOOD_CHANGE`` and ``MPR_CHANGE`` and *requires*
``HELLO_IN`` and ``POWER_STATUS``; protocols that use its flooding service
register additional message types at runtime
(:meth:`MprCF.add_flooded_type`), which extends the tuple and rewires the
deployment automatically.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.core.manet_protocol import EventHandlerComponent, ManetProtocol
from repro.events.event import Event
from repro.events.registry import EventTuple, Requirement
from repro.events.types import EventOntology
from repro.packetbb.message import Message, MsgType
from repro.protocols.mpr.calculator import MprCalculator
from repro.protocols.mpr.forward import MprForward
from repro.protocols.mpr.handlers import (
    MprHelloGenerator,
    MprHelloHandler,
    WillingnessHandler,
)
from repro.protocols.mpr.hysteresis import HysteresisPolicy
from repro.protocols.mpr.state import MprState

HELLO_INTERVAL = 2.0       # RFC 3626 default
HOLD_MULTIPLIER = 3.0      # NEIGHB_HOLD_TIME = 3 x HELLO_INTERVAL
HELLO_JITTER = 0.25        # fraction of the interval
FIRST_HELLO_DELAY = 0.1    # a joining node announces itself promptly


class _FloodRelayHandler(EventHandlerComponent):
    """Per-message-type handler feeding the MPR forwarding algorithm."""

    def __init__(self, cf: "MprCF", in_event: str, out_event: str) -> None:
        self.handles = (in_event,)
        super().__init__(f"relay[{in_event}]")
        self.cf = cf
        self.out_event = out_event
        #: numeric message types seen through this relay; purged from the
        #: duplicate set when the type is unregistered (the registrant's
        #: replacement restarts its seqnum space)
        self.msg_types_seen: set = set()

    def handle(self, event: Event) -> None:
        message = event.payload
        if isinstance(message, Message):
            self.msg_types_seen.add(message.msg_type)
        self.cf.mpr_forward.consider(event, self.out_event)


class MprCF(ManetProtocol):
    """Multipoint Relaying: link sensing, relay selection, flooding."""

    protocol_class = "service"

    def __init__(
        self,
        ontology: EventOntology,
        hello_interval: float = HELLO_INTERVAL,
        jitter: float = HELLO_JITTER,
        hysteresis_enabled: bool = False,
        name: str = "mpr",
    ) -> None:
        super().__init__(name, ontology)
        self.configurator.update(
            {
                "hello_interval": hello_interval,
                "hold_multiplier": HOLD_MULTIPLIER,
                "jitter": jitter,
            }
        )
        self.mpr_state = MprState()
        self.set_state(self.mpr_state)
        self.mpr_forward = MprForward(self)
        self.set_forward(self.mpr_forward)

        self.control.insert(HysteresisPolicy(enabled=hysteresis_enabled))
        self.control.insert(MprCalculator())

        self.add_source(
            MprHelloGenerator(self, hello_interval, jitter, FIRST_HELLO_DELAY)
        )
        self.add_handler(MprHelloHandler(self))
        self.add_handler(WillingnessHandler(self))

        self._flooded: Dict[str, str] = {}
        self._prev_sym: Set[int] = set()
        self._last_hello_trigger = -1e9
        self.set_event_tuple(
            EventTuple(
                required=["HELLO_IN", "POWER_STATUS"],
                provided=["HELLO_OUT", "NHOOD_CHANGE", "MPR_CHANGE", "LINK_BREAK"],
            )
        )

    # -- replaceable plug-ins (resolved by name so hot-swaps take effect) -------

    @property
    def hysteresis(self) -> HysteresisPolicy:
        return self.control.child("hysteresis")

    @property
    def calculator(self) -> MprCalculator:
        return self.control.child("mpr-calculator")

    # -- installation ---------------------------------------------------------

    def on_install(self, deployment) -> None:
        deployment.system.load_network_driver(
            "hello-driver", [(int(MsgType.HELLO), "HELLO_IN", "HELLO_OUT")]
        )
        deployment.system.load_power_status()

    # -- flooding service --------------------------------------------------------

    def add_flooded_type(self, in_event: str, out_event: str) -> None:
        """Register a broadcast message type for MPR flooding.

        OLSR registers ``TC_IN``/``TC_OUT``; the DYMO optimised-flooding
        variant can register its Routing Elements the same way.
        """
        if in_event in self._flooded:
            return
        self._flooded[in_event] = out_event
        self.add_handler(_FloodRelayHandler(self, in_event, out_event))
        self.set_event_tuple(
            self.event_tuple.with_required(Requirement(in_event)).with_provided(
                out_event
            )
        )

    def remove_flooded_type(self, in_event: str) -> None:
        out_event = self._flooded.pop(in_event, None)
        if out_event is None:
            return
        handler = self.remove_component(f"relay[{in_event}]")
        for msg_type in getattr(handler, "msg_types_seen", ()):
            self.mpr_state.purge_duplicates(msg_type)
        required = [r for r in self.event_tuple.required if r.name != in_event]
        provided = [
            p
            for p in self.event_tuple.provided
            if p != out_event or p in self._flooded.values()
        ]
        self.set_event_tuple(EventTuple(required, provided))

    def flooded_types(self) -> Dict[str, str]:
        return dict(self._flooded)

    # -- timing ---------------------------------------------------------------------

    def hello_interval(self) -> float:
        return self.config("hello_interval")

    def link_hold_time(self) -> float:
        return self.config("hello_interval") * self.config("hold_multiplier")

    # -- neighbourhood bookkeeping -----------------------------------------------------

    def run_housekeeping(self, now: float) -> None:
        """Expiry + hysteresis decay; called before each HELLO emission."""
        state = self.mpr_state
        for link in state.links.values():
            if now - link.last_heard > self.hello_interval() * 1.5:
                self.hysteresis.on_hello_missed(link)
        lost = state.expire_links(now)
        state.expire_selectors(now)
        state.gc_duplicates(now)
        if lost:
            for neighbour in lost:
                self.emit("LINK_BREAK", payload={"neighbour": neighbour})
        self.after_neighbourhood_update(now)

    def after_neighbourhood_update(self, now: float) -> None:
        """Detect symmetric-set / MPR-set changes and emit change events."""
        sym = set(self.mpr_state.symmetric_neighbours(now))
        if sym != self._prev_sym:
            added = sorted(sym - self._prev_sym)
            lost = sorted(self._prev_sym - sym)
            self._prev_sym = sym
            self.emit(
                "NHOOD_CHANGE",
                payload={"added": added, "lost": lost, "neighbours": set(sym)},
            )
        new_mprs = self.calculator.select(
            self.mpr_state, now, self.local_address, sym=sym
        )
        if new_mprs != self.mpr_state.mpr_set:
            self.mpr_state.mpr_set = new_mprs
            self.emit("MPR_CHANGE", payload={"mpr_set": set(new_mprs)})

    def maybe_trigger_hello(self) -> None:
        """Pull the next HELLO forward after a link-state change.

        Rate-limited triggered HELLOs accelerate link symmetry when a node
        joins (RFC 3626 permits message jitter/triggering); without them a
        new neighbour waits out full HELLO intervals at each side.
        """
        now = self.deployment.now
        if now - self._last_hello_trigger < 0.5:
            return
        self._last_hello_trigger = now
        generator = self.registry.sources().get("hello-generator")
        if generator is not None:
            generator.reschedule(0.1)

    # -- query surface (direct calls from OLSR / DYMO) ------------------------------------

    def symmetric_neighbours(self) -> List[int]:
        return self.mpr_state.symmetric_neighbours(self.deployment.now)

    def is_selector(self, neighbour: int) -> bool:
        return neighbour in self.mpr_state.active_selectors(self.deployment.now)

    def selectors(self) -> List[int]:
        return self.mpr_state.active_selectors(self.deployment.now)

    def two_hop_map(self) -> Dict[int, Set[int]]:
        return {n: set(s) for n, s in self.mpr_state.two_hop.items()}
