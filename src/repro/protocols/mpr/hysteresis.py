"""Link hysteresis (RFC 3626 section 14) as a pluggable component.

Hysteresis damps link flapping on lossy radios: a link's quality estimate
rises exponentially with each HELLO heard and decays with each missed one;
the link is only *established* once quality exceeds a high threshold and is
only *dropped* once it falls below a low one.  The component appears as a
plug-in of the MPR CF in the paper's Fig 5; being a component, it can be
replaced (e.g. by the power-aware variant's cost-annotating handler chain)
or removed entirely on clean networks.
"""

from __future__ import annotations

from repro.opencom.component import Component
from repro.protocols.mpr.state import LinkEntry


class HysteresisPolicy(Component):
    """The RFC 3626 exponentially-smoothed link quality rule."""

    def __init__(
        self,
        scaling: float = 0.5,
        threshold_high: float = 0.8,
        threshold_low: float = 0.3,
        enabled: bool = True,
    ) -> None:
        super().__init__("hysteresis")
        if not 0 < scaling <= 1:
            raise ValueError(f"scaling must be in (0, 1]: {scaling}")
        if not 0 <= threshold_low <= threshold_high <= 1:
            raise ValueError(
                f"thresholds must satisfy 0 <= low <= high <= 1: "
                f"{threshold_low}, {threshold_high}"
            )
        self.scaling = scaling
        self.threshold_high = threshold_high
        self.threshold_low = threshold_low
        self.enabled = enabled
        self.provide_interface("IHysteresis", "IHysteresis")

    def on_hello_received(self, link: LinkEntry) -> None:
        """Update quality for a heard HELLO; may clear the pending flag."""
        if not self.enabled:
            link.pending = False
            return
        link.quality = (1 - self.scaling) * link.quality + self.scaling
        if link.quality > self.threshold_high:
            link.pending = False

    def on_hello_missed(self, link: LinkEntry) -> None:
        """Decay quality for a missed HELLO; may set the pending flag."""
        if not self.enabled:
            return
        link.quality = (1 - self.scaling) * link.quality
        if link.quality < self.threshold_low:
            link.pending = True

    def get_state(self) -> dict:
        return {
            "scaling": self.scaling,
            "threshold_high": self.threshold_high,
            "threshold_low": self.threshold_low,
            "enabled": self.enabled,
        }

    def set_state(self, state: dict) -> None:
        for key in ("scaling", "threshold_high", "threshold_low", "enabled"):
            if key in state:
                setattr(self, key, state[key])
