"""DYMO event handlers.

The handler set mirrors the paper's Fig 6: the RE Handler (route
request/reply processing with path accumulation), the RERR Handler, the
UERR Handler, plus the handlers consuming the NetLink kernel events and the
Neighbour Detection CF's change notifications.  "Atomic execution of [the
RE] Handler (as guaranteed by MANETKit) is essential" — the concurrency
models provide exactly that guarantee.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, TYPE_CHECKING

from repro.core.manet_protocol import EventHandlerComponent
from repro.events.event import Event
from repro.packetbb.message import Message
from repro.protocols.common import seq_newer_or_equal
from repro.protocols.dymo.messages import (
    RREP,
    ReInfo,
    build_re,
    build_rerr,
    build_uerr,
    critical_unsupported_tlvs,
    extend_re,
    parse_re,
    parse_rerr,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.protocols.dymo.protocol import DymoCF


class ReHandler(EventHandlerComponent):
    """Processes Routing Elements (RREQs and RREPs)."""

    handles = ("RE_IN",)

    def __init__(self, cf: "DymoCF", name: str = "re-handler") -> None:
        super().__init__(name)
        self.cf = cf
        self.rreqs_seen = 0
        self.rreps_seen = 0
        self.loops_dropped = 0
        self.duplicates_dropped = 0
        self.intermediate_replies = 0

    # -- entry point ----------------------------------------------------------

    def handle(self, event: Event) -> None:
        message: Message = event.payload
        cf = self.cf
        critical = critical_unsupported_tlvs(message)
        if critical:
            # DYMO: a critical element we do not support rejects the whole
            # message, answered with a UERR toward the sender.
            if event.source is not None and message.originator is not None:
                cf.send_message(
                    "UERR_OUT",
                    build_uerr(critical[0], cf.local_address,
                               message.originator.node_id),
                    link_dst=event.source,
                )
            return
        info = parse_re(message)
        if info is None:
            return
        me = cf.local_address
        if any(addr == me for addr, _seq in info.path):
            self.loops_dropped += 1
            return
        self.learn_from_path(info, event)
        if info.is_rreq:
            self.rreqs_seen += 1
            self.handle_rreq(message, info, event)
        elif info.is_rrep:
            self.rreps_seen += 1
            self.handle_rrep(message, info, event)

    # -- path accumulation learning (shared with the multipath variant) --------

    def learn_from_path(self, info: ReInfo, event: Event) -> None:
        """Install/refresh a route to every address on the accumulated path."""
        cf = self.cf
        sender = event.source
        if sender is None:
            return
        now = event.timestamp
        for index, (address, seqnum) in enumerate(info.path):
            if address == cf.local_address:
                continue
            hop_count = info.distance_to(index)
            if cf.dymo_state.is_fresher(address, seqnum, hop_count):
                cf.install_route(address, sender, hop_count, seqnum, now)

    # -- RREQ ----------------------------------------------------------------------

    def handle_rreq(self, message: Message, info: ReInfo, event: Event) -> None:
        cf = self.cf
        state = cf.dymo_state
        if state.rreq_is_duplicate(info.originator, info.originator_seqnum):
            self.duplicates_dropped += 1
            return
        state.note_rreq(info.originator, info.originator_seqnum, event.timestamp)
        if info.target == cf.local_address:
            self.answer_rreq(info)
            return
        if self.maybe_intermediate_reply(info, event):
            return
        if message.forwardable and cf.may_relay_broadcast(event):
            relayed = extend_re(message, info, cf.local_address, state.own_seqnum)
            cf.send_message("RE_OUT", relayed)

    def maybe_intermediate_reply(self, info: ReInfo, event: Event) -> bool:
        """Optional DYMO feature: an intermediate node with a demonstrably
        fresh route to the target answers on its behalf, stopping the flood
        early.  Off by default (``intermediate_rrep`` config flag); only a
        route whose sequence number is provably at least as fresh as the
        one the originator asked about may be used."""
        cf = self.cf
        if not cf.config("intermediate_rrep", False):
            return False
        route = cf.dymo_state.table.lookup(info.target)
        if route is None or route.seqnum is None:
            return False
        if info.target_seqnum is not None and not seq_newer_or_equal(
            route.seqnum, info.target_seqnum
        ):
            return False
        if info.target_seqnum is None:
            return False  # cannot prove freshness the originator needs
        reverse = cf.dymo_state.table.lookup(info.originator)
        if reverse is None:
            return False
        self.intermediate_replies += 1
        rrep = build_re(
            RREP,
            target=info.originator,
            # reply on the target's behalf with its known seqnum and our
            # distance to it, then accumulate ourselves as the first hop
            path=[(info.target, route.seqnum), (cf.local_address,
                                                cf.dymo_state.own_seqnum)],
            hop_limit=cf.net_diameter(),
            target_seqnum=info.originator_seqnum,
            hop_count=route.hop_count,
            # positional distance to index 0 would be 2 at the first
            # receiver; the true distance is route.hop_count + 1
            hop_offsets={0: route.hop_count - 1},
        )
        cf.send_message("RE_OUT", rrep, link_dst=reverse.next_hop)
        return True

    def answer_rreq(self, info: ReInfo) -> None:
        """We are the target: originate an RREP back along the path."""
        cf = self.cf
        state = cf.dymo_state
        seqnum = state.next_seqnum()
        rrep = build_re(
            RREP,
            target=info.originator,
            path=[(cf.local_address, seqnum)],
            hop_limit=cf.net_diameter(),
            target_seqnum=info.originator_seqnum,
        )
        route = state.table.lookup(info.originator)
        if route is None:  # pragma: no cover - path learning just installed it
            return
        cf.send_message("RE_OUT", rrep, link_dst=route.next_hop)

    # -- RREP ----------------------------------------------------------------------

    def handle_rrep(self, message: Message, info: ReInfo, event: Event) -> None:
        cf = self.cf
        if info.target == cf.local_address:
            # Discovery complete; pending bookkeeping was already resolved
            # when the route to the RREP originator was installed.
            return
        route = cf.dymo_state.table.lookup(info.target)
        if route is None or not message.forwardable:
            return
        relayed = extend_re(message, info, cf.local_address, cf.dymo_state.own_seqnum)
        cf.send_message("RE_OUT", relayed, link_dst=route.next_hop)


class KernelEventsHandler(EventHandlerComponent):
    """Consumes the NetLink hook events: the reactive triggers.

    ``NO_ROUTE`` starts a route discovery (with exponential-backoff
    retries), ``ROUTE_UPDATE`` extends route lifetimes, and
    ``SEND_ROUTE_ERR`` originates a Route Error (paper section 5.2).
    """

    handles = ("NO_ROUTE", "ROUTE_UPDATE")

    def __init__(self, cf: "DymoCF") -> None:
        super().__init__("kernel-events-handler")
        self.cf = cf

    def handle(self, event: Event) -> None:
        destination = event.payload["destination"]
        if event.etype.name == "NO_ROUTE":
            self.cf.start_discovery(destination)
        else:  # ROUTE_UPDATE
            self.cf.refresh_route(destination)


class NeighbourhoodHandler(EventHandlerComponent):
    """Invalidates routes over broken links (NHOOD_CHANGE / LINK_BREAK).

    "In order to be kept abreast of network neighbourhood changes, the DYMO
    instance requires a NHOOD_CHANGE event from the Neighbour Detection
    instance for route invalidation upon link breaks" (section 5.2).
    """

    handles = ("NHOOD_CHANGE", "LINK_BREAK")

    def __init__(self, cf: "DymoCF", name: str = "nhood-handler") -> None:
        super().__init__(name)
        self.cf = cf

    def handle(self, event: Event) -> None:
        if event.etype.name == "LINK_BREAK":
            lost = [event.payload["neighbour"]]
        else:
            lost = event.payload.get("lost", [])
        if not lost:
            return
        broken: List[int] = []
        for neighbour in lost:
            broken.extend(self.cf.invalidate_via(neighbour))
        if broken:
            self.cf.originate_rerr(broken, invalidate=False)


class RerrHandler(EventHandlerComponent):
    """Processes received Route Errors and SEND_ROUTE_ERR kernel events.

    This is the component the multipath variant replaces: "on receiving a
    SEND_ROUTE_ERROR event, the new Handler only sends a route error
    message when an alternative path is not available" (section 5.2).
    """

    handles = ("RERR_IN", "SEND_ROUTE_ERR")

    def __init__(self, cf: "DymoCF", name: str = "rerr-handler") -> None:
        super().__init__(name)
        self.cf = cf
        self.rerrs_seen = 0

    def handle_send_route_err(self, event: Event) -> None:
        """A forwarded packet hit a missing route: originate a RERR."""
        self.cf.originate_rerr([event.payload["destination"]], invalidate=True)

    def affected_destinations(
        self, unreachable: List[Tuple[int, Optional[int]]], event: Event
    ) -> List[int]:
        """Destinations whose route this RERR actually invalidates."""
        cf = self.cf
        affected = []
        for destination, _seqnum in unreachable:
            route = cf.dymo_state.table.get(destination)
            if route is not None and route.valid and route.next_hop == event.source:
                affected.append(destination)
        return affected

    def handle(self, event: Event) -> None:
        if event.etype.name == "SEND_ROUTE_ERR":
            self.handle_send_route_err(event)
            return
        message: Message = event.payload
        cf = self.cf
        self.rerrs_seen += 1
        unreachable = parse_rerr(message)
        affected = self.affected_destinations(unreachable, event)
        if not affected:
            return
        for destination in affected:
            cf.drop_route(destination)
        if message.forwardable:
            relayed = build_rerr(
                [(d, s) for d, s in unreachable if d in affected],
                cf.local_address,
                hop_limit=(message.hop_limit or 1) - 1,
            )
            cf.send_message("RERR_OUT", relayed)


class UerrHandler(EventHandlerComponent):
    """Processes Unsupported-Element Errors (diagnostics only)."""

    handles = ("UERR_IN",)

    def __init__(self, cf: "DymoCF") -> None:
        super().__init__("uerr-handler")
        self.cf = cf
        self.uerrs_seen = 0
        self.unsupported_types: List[int] = []

    def handle(self, event: Event) -> None:
        from repro.protocols.common import TlvType

        message: Message = event.payload
        self.uerrs_seen += 1
        tlv = message.tlv_block.find(TlvType.UNSUPPORTED)
        if tlv is not None:
            self.unsupported_types.append(tlv.as_int())
