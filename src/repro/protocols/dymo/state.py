"""The DYMO S element: route table, sequence number, pending discoveries.

The multipath variant replaces this component with
:class:`~repro.protocols.dymo.multipath.MultipathDymoState`, which
"accommodates the new formats of protocol messages and routing table
entries (a path list now exists for each route)" (paper section 5.2) —
hence the explicit ``get_state``/``set_state`` pair so the swap carries the
learned routes across.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.manet_protocol import StateComponent
from repro.protocols.common import seq_increment, seq_newer
from repro.utils.routing_table import Route, RoutingTable
from repro.utils.timers import Timer


@dataclass
class DymoRoute:
    """Snapshot view of one DYMO route (used by tests/inspection)."""

    destination: int
    next_hop: int
    hop_count: int
    seqnum: int
    expiry: Optional[float]
    valid: bool


@dataclass
class PendingDiscovery:
    """Book-keeping for one in-progress route discovery."""

    target: int
    tries: int = 0
    wait: float = 1.0
    timer: Optional[Timer] = None

    def cancel(self) -> None:
        if self.timer is not None:
            self.timer.stop()
            self.timer = None


class DymoState(StateComponent):
    """S element of the DYMO CF."""

    DUP_HOLD = 10.0

    def __init__(self) -> None:
        super().__init__("dymo-state")
        self.own_seqnum = 1
        self.table = RoutingTable()
        self.pending: Dict[int, PendingDiscovery] = {}
        #: RREQ duplicate set: (originator, originator seqnum) -> expiry
        self.rreq_seen: Dict[Tuple[int, int], float] = {}
        self.discoveries_initiated = 0
        self.discoveries_succeeded = 0
        self.discoveries_failed = 0
        self.provide_interface("IDYMOState", "IDYMOState")

    def attach(self, protocol) -> None:
        super().attach(protocol)
        # A hot-swapped S element must inherit the deployment clock, or
        # route expiry silently stops working after the swap.
        if protocol is not None and protocol.deployment is not None:
            self.bind_clock(lambda: protocol.deployment.now)

    def bind_clock(self, clock) -> None:
        """Late-bind the route table to the deployment clock."""
        self.table._clock = clock

    def current_time(self) -> float:
        return self.table._clock()

    # -- sequence number ------------------------------------------------------

    def next_seqnum(self) -> int:
        self.own_seqnum = seq_increment(self.own_seqnum)
        if self.own_seqnum == 0:  # zero is reserved for "unknown"
            self.own_seqnum = 1
        return self.own_seqnum

    # -- route freshness (DYMO section 5.2 of the draft) -------------------------

    def is_fresher(self, destination: int, seqnum: int, hop_count: int) -> bool:
        """Whether (seqnum, hop_count) should supersede the current route."""
        existing = self.table.get(destination)
        if existing is None or not existing.valid:
            return True
        current_seq = existing.seqnum or 0
        if seq_newer(seqnum, current_seq):
            return True
        if seqnum == current_seq and hop_count < existing.hop_count:
            return True
        return False

    def install_route(
        self,
        destination: int,
        next_hop: int,
        hop_count: int,
        seqnum: int,
        expiry: Optional[float],
    ) -> Route:
        return self.table.add(
            Route(
                destination=destination,
                next_hop=next_hop,
                hop_count=hop_count,
                seqnum=seqnum,
                expiry=expiry,
            )
        )

    def routes_snapshot(self) -> List[DymoRoute]:
        return [
            DymoRoute(r.destination, r.next_hop, r.hop_count, r.seqnum or 0,
                      r.expiry, r.valid)
            for r in self.table.snapshot()
        ]

    def invalidate_via_next_hop(
        self, next_hop: int
    ) -> Tuple[List[Tuple[int, int, int]], List[int]]:
        """Handle a broken link to ``next_hop``.

        Returns ``(switched, broken)``: destinations switched to an
        alternative path as ``(dest, new_next_hop, hop_count)`` triples —
        always empty for the single-path table — and destinations now
        unreachable.
        """
        broken = [route.destination for route in self.table.routes_via(next_hop)]
        for destination in broken:
            self.table.invalidate(destination)
        return [], broken

    # -- duplicate RREQ tracking -----------------------------------------------------

    def rreq_is_duplicate(self, originator: int, seqnum: int) -> bool:
        return (originator, seqnum) in self.rreq_seen

    def note_rreq(self, originator: int, seqnum: int, now: float) -> None:
        self.rreq_seen[(originator, seqnum)] = now + self.DUP_HOLD
        if len(self.rreq_seen) > 2048:
            for key in [k for k, t in self.rreq_seen.items() if t <= now]:
                del self.rreq_seen[key]

    # -- state transfer ------------------------------------------------------------------

    def get_state(self) -> Dict[str, object]:
        return {
            "own_seqnum": self.own_seqnum,
            "routes": [
                (r.destination, r.next_hop, r.hop_count, r.seqnum, r.expiry, r.valid)
                for r in self.table.snapshot()
            ],
            "rreq_seen": dict(self.rreq_seen),
            "counters": (
                self.discoveries_initiated,
                self.discoveries_succeeded,
                self.discoveries_failed,
            ),
        }

    def set_state(self, state: Dict[str, object]) -> None:
        if "own_seqnum" in state:
            self.own_seqnum = state["own_seqnum"]  # type: ignore[assignment]
        routes = state.get("routes")
        if isinstance(routes, list):
            for destination, next_hop, hop_count, seqnum, expiry, valid in routes:
                route = Route(destination, next_hop, hop_count, seqnum, expiry, valid)
                self.table.add(route)
        seen = state.get("rreq_seen")
        if isinstance(seen, dict):
            self.rreq_seen.update(seen)
        counters = state.get("counters")
        if isinstance(counters, tuple) and len(counters) == 3:
            (
                self.discoveries_initiated,
                self.discoveries_succeeded,
                self.discoveries_failed,
            ) = counters
