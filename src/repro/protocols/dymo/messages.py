"""DYMO Routing Element (RE) wire format helpers.

A Routing Element carries both RREQ and RREP semantics (distinguished by
the ``RE_TYPE`` message TLV) and uses *path accumulation*: every node that
handles the element appends its own address and sequence number, so a
single RE teaches every receiver a route to every node on the path —
"path accumulation [is a technique] that can be switched on to improve a
particular property of an underlying base protocol" (paper section 2), and
is DYMO's signature difference from AODV.

Layout:

* address block 0 — ``[target]``, optionally tagged ``TARGET_SEQNUM``;
* address block 1 — the accumulated path, originator first, each index
  tagged with its node's ``ADDR_SEQNUM``;
* message TLV ``RE_TYPE`` — 0 for RREQ, 1 for RREP.

RERRs carry one address block of unreachable destinations, each index
optionally tagged with the destination's last known sequence number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.packetbb.address import Address, AddressBlock
from repro.packetbb.message import Message, MsgType
from repro.packetbb.tlv import TLV, TLVBlock
from repro.protocols.common import TlvType

RREQ = 0
RREP = 1

#: (address, seqnum) of one accumulated hop.
PathEntry = Tuple[int, int]


@dataclass
class ReInfo:
    """Parsed view of one Routing Element.

    ``hop_offsets`` carries per-index extra distance (``ADDR_HOPCOUNT``
    TLVs): normally absent, but a proxied RREP from an intermediate node
    replying on the target's behalf uses it so receivers account the true
    distance to the target rather than the positional one.
    """

    re_type: int
    target: int
    target_seqnum: Optional[int]
    path: List[PathEntry]          # originator first
    hop_limit: Optional[int]
    hop_count: Optional[int]
    hop_offsets: dict = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.hop_offsets is None:
            self.hop_offsets = {}

    def distance_to(self, index: int) -> int:
        """Hops from the receiving node to ``path[index]``'s address."""
        return len(self.path) - index + self.hop_offsets.get(index, 0)

    @property
    def originator(self) -> int:
        return self.path[0][0]

    @property
    def originator_seqnum(self) -> int:
        return self.path[0][1]

    @property
    def is_rreq(self) -> bool:
        return self.re_type == RREQ

    @property
    def is_rrep(self) -> bool:
        return self.re_type == RREP


def build_re(
    re_type: int,
    target: int,
    path: List[PathEntry],
    hop_limit: int,
    target_seqnum: Optional[int] = None,
    hop_count: int = 0,
    hop_offsets: Optional[dict] = None,
) -> Message:
    """Construct a Routing Element message."""
    if not path:
        raise ValueError("a Routing Element needs a non-empty accumulated path")
    target_block = AddressBlock([Address.from_node_id(target)])
    if target_seqnum is not None:
        target_block.tlv_block.add(
            TLV.of_int(TlvType.TARGET_SEQNUM, target_seqnum, width=2, index_start=0, index_stop=0)
        )
    path_block = AddressBlock([Address.from_node_id(a) for a, _seq in path])
    for index, (_addr, seqnum) in enumerate(path):
        path_block.tlv_block.add(
            TLV.of_int(
                TlvType.ADDR_SEQNUM, seqnum, width=2,
                index_start=index, index_stop=index,
            )
        )
    for index, offset in sorted((hop_offsets or {}).items()):
        if offset:
            path_block.tlv_block.add(
                TLV.of_int(
                    TlvType.ADDR_HOPCOUNT, offset, width=1,
                    index_start=index, index_stop=index,
                )
            )
    return Message(
        MsgType.RE,
        originator=Address.from_node_id(path[0][0]),
        hop_limit=hop_limit,
        hop_count=hop_count,
        seqnum=path[0][1] & 0xFFFF,
        tlv_block=TLVBlock([TLV.of_int(TlvType.RE_TYPE, re_type, width=1)]),
        address_blocks=[target_block, path_block],
    )


def parse_re(message: Message) -> Optional[ReInfo]:
    """Parse a Routing Element; ``None`` when structurally invalid."""
    if message.msg_type != int(MsgType.RE):
        return None
    if len(message.address_blocks) < 2:
        return None
    re_type_tlv = message.tlv_block.find(TlvType.RE_TYPE)
    if re_type_tlv is None:
        return None
    target_block, path_block = message.address_blocks[0], message.address_blocks[1]
    if not target_block.addresses or not path_block.addresses:
        return None
    target_seq_tlv = target_block.tlv_block.find(TlvType.TARGET_SEQNUM)
    path: List[PathEntry] = []
    hop_offsets = {}
    for index, address in enumerate(path_block.addresses):
        seq_tlv = path_block.tlv_block.find_for_index(TlvType.ADDR_SEQNUM, index)
        path.append((address.node_id, seq_tlv.as_int() if seq_tlv else 0))
        offset_tlv = path_block.tlv_block.find_for_index(
            TlvType.ADDR_HOPCOUNT, index
        )
        if offset_tlv is not None:
            hop_offsets[index] = offset_tlv.as_int()
    return ReInfo(
        re_type=re_type_tlv.as_int(),
        target=target_block.addresses[0].node_id,
        target_seqnum=target_seq_tlv.as_int() if target_seq_tlv else None,
        path=path,
        hop_limit=message.hop_limit,
        hop_count=message.hop_count,
        hop_offsets=hop_offsets,
    )


def extend_re(message: Message, info: ReInfo, self_address: int, self_seqnum: int) -> Message:
    """A relayed copy of an RE with path accumulation applied."""
    return build_re(
        info.re_type,
        info.target,
        info.path + [(self_address, self_seqnum)],
        hop_limit=(message.hop_limit - 1) if message.hop_limit is not None else 0,
        target_seqnum=info.target_seqnum,
        hop_count=(message.hop_count + 1) if message.hop_count is not None else 1,
        hop_offsets=info.hop_offsets,  # indices unchanged by appending
    )


def critical_unsupported_tlvs(message: Message) -> List[int]:
    """TLV types in the critical-extension space we do not understand."""
    return sorted(
        {
            tlv.tlv_type
            for tlv in message.tlv_block
            if tlv.tlv_type >= int(TlvType.CRITICAL_BASE)
        }
    )


def build_rerr(
    unreachable: List[Tuple[int, Optional[int]]],
    source: int,
    hop_limit: int = 10,
) -> Message:
    """Construct a Route Error listing unreachable destinations."""
    block = AddressBlock([Address.from_node_id(a) for a, _seq in unreachable])
    for index, (_addr, seqnum) in enumerate(unreachable):
        if seqnum is not None:
            block.tlv_block.add(
                TLV.of_int(
                    TlvType.ADDR_SEQNUM, seqnum, width=2,
                    index_start=index, index_stop=index,
                )
            )
    return Message(
        MsgType.RERR,
        originator=Address.from_node_id(source),
        hop_limit=hop_limit,
        hop_count=0,
        address_blocks=[block],
    )


def parse_rerr(message: Message) -> List[Tuple[int, Optional[int]]]:
    """Unreachable (destination, seqnum?) pairs from a RERR."""
    if message.msg_type != int(MsgType.RERR) or not message.address_blocks:
        return []
    block = message.address_blocks[0]
    out: List[Tuple[int, Optional[int]]] = []
    for index, address in enumerate(block.addresses):
        seq_tlv = block.tlv_block.find_for_index(TlvType.ADDR_SEQNUM, index)
        out.append((address.node_id, seq_tlv.as_int() if seq_tlv else None))
    return out


def build_uerr(
    offending_type: int, source: int, re_originator: int
) -> Message:
    """Construct an Unsupported-Element Error for a critical TLV."""
    return Message(
        MsgType.UERR,
        originator=Address.from_node_id(source),
        hop_limit=1,
        hop_count=0,
        tlv_block=TLVBlock(
            [TLV.of_int(TlvType.UNSUPPORTED, offending_type, width=1)]
        ),
        address_blocks=[AddressBlock([Address.from_node_id(re_originator)])],
    )
