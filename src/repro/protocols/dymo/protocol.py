"""The DYMO CF: assembly of the reactive ManetProtocol (paper Fig 6).

"The MANETKit configuration for DYMO consists of one new ManetProtocol
instance atop the System CF.  It also uses the Neighbour Detection CF.
[...] As a reactive protocol, DYMO requires additional machinery to ensure
that route discoveries are triggered and route lifetime updates are
performed correctly — the deployment of a 'NetLink' component in the
System CF responsible for packet filtering" (section 5.2).

DYMO also demonstrates protocol-specific context events: "our DYMO
implementation provides events relating to packet loss, and the number of
route discoveries initiated per unit time" (section 4.5) — see
:class:`DiscoveryRateSource` and the ``PACKET_LOSS`` emissions on failed
discoveries.
"""

from __future__ import annotations

from typing import List

from repro.core.manet_protocol import EventSourceComponent, ManetProtocol
from repro.events.event import Event
from repro.events.registry import EventTuple
from repro.events.types import EventOntology
from repro.packetbb.message import MsgType
from repro.protocols.dymo.handlers import (
    KernelEventsHandler,
    NeighbourhoodHandler,
    ReHandler,
    RerrHandler,
    UerrHandler,
)
from repro.protocols.dymo.messages import RREQ, build_re, build_rerr
from repro.protocols.dymo.state import DymoState, PendingDiscovery

ROUTE_TIMEOUT = 5.0      # route lifetime; refreshed on use (ROUTE_UPDATE)
RREQ_WAIT = 1.0          # initial retry timeout, doubled per attempt
RREQ_TRIES = 3
NET_DIAMETER = 10        # RREQ/RREP hop limit


class DiscoveryRateSource(EventSourceComponent):
    """Protocol-specific context: route discoveries per unit time."""

    def __init__(self, cf: "DymoCF", interval: float = 5.0) -> None:
        super().__init__("discovery-rate", interval)
        self.cf = cf
        self._last_count = 0

    def generate(self) -> None:
        initiated = self.cf.dymo_state.discoveries_initiated
        rate = (initiated - self._last_count) / self.interval
        self._last_count = initiated
        self.cf.emit("ROUTE_DISCOVERY_RATE", payload={"rate": rate})


class DymoCF(ManetProtocol):
    """DYMO: reactive, on-demand routing with path accumulation."""

    protocol_class = "reactive"

    def __init__(
        self,
        ontology: EventOntology,
        route_timeout: float = ROUTE_TIMEOUT,
        rreq_wait: float = RREQ_WAIT,
        rreq_tries: int = RREQ_TRIES,
        name: str = "dymo",
    ) -> None:
        super().__init__(name, ontology)
        self.configurator.update(
            {
                "route_timeout": route_timeout,
                "rreq_wait": rreq_wait,
                "rreq_tries": rreq_tries,
                "net_diameter": NET_DIAMETER,
                "flooding": "blind",          # or "mpr" (optimised variant)
                "neighbour_source": "neighbour-detection",
            }
        )
        self.set_state(DymoState())
        self.add_handler(ReHandler(self))
        self.add_handler(RerrHandler(self))
        self.add_handler(UerrHandler(self))
        self.add_handler(KernelEventsHandler(self))
        self.add_handler(NeighbourhoodHandler(self))
        self.add_source(DiscoveryRateSource(self))
        self.set_event_tuple(
            EventTuple(
                required=[
                    "RE_IN",
                    "RERR_IN",
                    "UERR_IN",
                    "NO_ROUTE",
                    "ROUTE_UPDATE",
                    "SEND_ROUTE_ERR",
                    "NHOOD_CHANGE",
                    "LINK_BREAK",
                ],
                provided=[
                    "RE_OUT",
                    "RERR_OUT",
                    "UERR_OUT",
                    "ROUTE_FOUND",
                    "ROUTE_DISCOVERY_RATE",
                    "PACKET_LOSS",
                ],
            )
        )

    @property
    def dymo_state(self) -> DymoState:
        """The current S element (resolved dynamically: hot-swappable)."""
        return self._state  # type: ignore[return-value]

    # -- installation ---------------------------------------------------------

    def on_install(self, deployment) -> None:
        deployment.system.load_netlink()
        deployment.system.load_network_driver(
            "dymo-driver",
            [
                (int(MsgType.RE), "RE_IN", "RE_OUT"),
                (int(MsgType.RERR), "RERR_IN", "RERR_OUT"),
                (int(MsgType.UERR), "UERR_IN", "UERR_OUT"),
            ],
        )
        self.dymo_state.bind_clock(lambda: deployment.now)
        neighbour_source = self.config("neighbour_source")
        if (
            deployment.manager.unit(neighbour_source) is None
            and deployment.manager.unit("mpr") is None
        ):
            from repro.core.neighbour_detection import NeighbourDetectionCF

            deployment.deploy(NeighbourDetectionCF(self.ontology))

    def on_uninstall(self, deployment) -> None:
        # A live discovery's retry timer closes over this protocol; left
        # armed it would fire after the teardown and resurrect RREQ traffic
        # (or crash on the severed deployment reference) mid-switch.
        for pending in self.dymo_state.pending.values():
            pending.cancel()
        self.dymo_state.pending.clear()
        # Withdraw this protocol's kernel routes, like a real daemon on
        # exit; routes installed by co-deployed protocols survive.
        self.sys_state().replace_all([], proto=self.name)

    # -- parameters --------------------------------------------------------------

    def route_timeout(self) -> float:
        return self.config("route_timeout")

    def net_diameter(self) -> int:
        return self.config("net_diameter")

    # -- flooding policy (plain vs MPR-optimised) -----------------------------------

    def may_relay_broadcast(self, event: Event) -> bool:
        """Whether to rebroadcast a flooded RE received in ``event``.

        Three pluggable flooding styles (the paper's section 2 lists all of
        them as switchable techniques):

        * ``"blind"`` — always relay (classic flooding);
        * ``"mpr"`` — relay only if the previous hop selected this node as
          a multipoint relay (the optimised variant, section 5.2);
        * ``"gossip"`` — GOSSIP1(p, k) after Haas, Halpern & Li [15]:
          always relay within ``gossip_k`` hops of the originator (so the
          flood survives its fragile start), then relay with probability
          ``gossip_p``.
        """
        style = self.config("flooding")
        if style == "mpr":
            mpr = self.deployment.manager.unit("mpr")
            if mpr is None or event.source is None:
                return True
            return mpr.is_selector(event.source)
        if style == "gossip":
            message = event.payload
            hop_count = getattr(message, "hop_count", None) or 0
            if hop_count < self.config("gossip_k", 1):
                return True
            return (
                self.deployment.timers.rng.random()
                < self.config("gossip_p", 0.65)
            )
        return True

    # -- route table operations -------------------------------------------------------

    def install_route(
        self,
        destination: int,
        next_hop: int,
        hop_count: int,
        seqnum: int,
        now: float,
    ) -> None:
        """Install/refresh a route in both the protocol and kernel tables."""
        self.dymo_state.install_route(
            destination, next_hop, hop_count, seqnum, now + self.route_timeout()
        )
        self.after_route_installed(destination, next_hop, hop_count)

    def after_route_installed(
        self, destination: int, next_hop: int, hop_count: int
    ) -> None:
        """Kernel write + discovery resolution for a newly usable route."""
        self.sys_state().add_route(
            destination, next_hop, hop_count, lifetime=self.route_timeout(),
            proto=self.name,
        )
        pending = self.dymo_state.pending.pop(destination, None)
        if pending is not None:
            pending.cancel()
            self.dymo_state.discoveries_succeeded += 1
        # Exclusively consumed by the NetLink component, which re-injects
        # any packets buffered while discovery was in progress.
        self.emit("ROUTE_FOUND", payload={"destination": destination})

    def refresh_route(self, destination: int) -> None:
        timeout = self.route_timeout()
        route = self.dymo_state.table.lookup(destination)
        if route is None:
            return
        expiry = self.deployment.now + timeout
        route.expiry = expiry
        self.sys_state().refresh_route(destination, timeout)
        refreshed_hook = getattr(self.dymo_state, "on_route_refreshed", None)
        if refreshed_hook is not None:
            refreshed_hook(destination, expiry)

    def drop_route(self, destination: int) -> None:
        self.dymo_state.table.invalidate(destination)
        self.sys_state().del_route(destination)

    def invalidate_via(self, next_hop: int) -> List[int]:
        """React to a lost neighbour: switch or invalidate routes through it.

        Returns the destinations that became unreachable (to be reported in
        a RERR).  With the multipath S element, routes with an alternative
        link-disjoint path are switched instead of broken.
        """
        switched, broken = self.dymo_state.invalidate_via_next_hop(next_hop)
        for destination, new_next_hop, hop_count in switched:
            self.sys_state().add_route(
                destination, new_next_hop, hop_count,
                lifetime=self.route_timeout(), proto=self.name,
            )
        for destination in broken:
            self.sys_state().del_route(destination)
        return broken

    # -- route discovery ------------------------------------------------------------------

    def start_discovery(self, destination: int) -> None:
        """Originate an RREQ unless a discovery is already pending."""
        state = self.dymo_state
        if destination in state.pending:
            return
        if state.table.lookup(destination) is not None:
            return  # a route appeared meanwhile
        state.discoveries_initiated += 1
        pending = PendingDiscovery(
            destination, tries=1, wait=self.config("rreq_wait")
        )
        state.pending[destination] = pending
        self._send_rreq(destination)
        pending.timer = self.deployment.timers.one_shot(
            pending.wait, lambda: self._retry_discovery(destination)
        )

    def _send_rreq(self, destination: int) -> None:
        state = self.dymo_state
        known = state.table.get(destination)
        rreq = build_re(
            RREQ,
            target=destination,
            path=[(self.local_address, state.next_seqnum())],
            hop_limit=self.net_diameter(),
            target_seqnum=known.seqnum if known is not None else None,
        )
        self.send_message("RE_OUT", rreq)

    def _retry_discovery(self, destination: int) -> None:
        with self.lock:
            state = self.dymo_state
            pending = state.pending.get(destination)
            if pending is None:
                return
            if state.table.lookup(destination) is not None:
                pending.cancel()
                del state.pending[destination]
                return
            if pending.tries >= self.config("rreq_tries"):
                pending.cancel()
                del state.pending[destination]
                state.discoveries_failed += 1
                self._abandon_discovery(destination)
                return
            pending.tries += 1
            pending.wait *= 2  # exponential backoff
            self._send_rreq(destination)
            pending.timer = self.deployment.timers.one_shot(
                pending.wait, lambda: self._retry_discovery(destination)
            )

    def _abandon_discovery(self, destination: int) -> None:
        """Give up: drop buffered packets and report the loss as context."""
        try:
            netlink = self.direct("INetlink")
        except LookupError:
            netlink = None
        dropped = netlink.drop_buffered(destination) if netlink is not None else 0
        self.emit(
            "PACKET_LOSS",
            payload={"destination": destination, "packets": dropped},
        )

    # -- RERR origination ---------------------------------------------------------------------

    def originate_rerr(self, destinations: List[int], invalidate: bool) -> None:
        if invalidate:
            for destination in destinations:
                self.drop_route(destination)
        pairs = []
        for destination in destinations:
            route = self.dymo_state.table.get(destination)
            pairs.append((destination, route.seqnum if route is not None else None))
        self.send_message(
            "RERR_OUT", build_rerr(pairs, self.local_address)
        )

    # -- inspection -----------------------------------------------------------------------------

    def routing_table(self):
        return self.dymo_state.routes_snapshot()
