"""Multipath DYMO (paper section 5.2, after Galvez & Ruiz [10]).

"The goal of the multi-path DYMO variant is to reduce the overhead of
frequent flooding for route discovery, although at the expense of
additional route discovery latency.  It works by computing multiple
link-disjoint paths within a single route discovery attempt. [...] To
configure multi-path DYMO, three components need be replaced: the S
component (a path list now exists for each route), the RE Event Handler
(duplicate route requests are no longer systematically discarded but
rather processed to find alternative paths), and the RERR Event Handler
(on receiving a SEND_ROUTE_ERROR event, the new Handler only sends a route
error message when an alternative path is not available; otherwise, it
installs the new path in the OS's kernel routing table)."

Link-disjointness is computed over the directed edge sets of the
accumulated paths: two paths are alternatives only if they share no edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.events.event import Event
from repro.packetbb.message import Message
from repro.protocols.common import seq_newer
from repro.protocols.dymo.handlers import ReHandler, RerrHandler
from repro.protocols.dymo.messages import ReInfo, build_re, extend_re, RREP
from repro.protocols.dymo.state import DymoState
from repro.utils.routing_table import Route

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.manetkit import ManetKit
    from repro.protocols.dymo.protocol import DymoCF

Edge = Tuple[int, int]

#: Maximum link-disjoint paths kept per destination / forwarded per RREQ.
MAX_PATHS = 3


@dataclass
class PathRecord:
    """One of possibly several link-disjoint paths to a destination."""

    next_hop: int
    hop_count: int
    seqnum: int
    edges: FrozenSet[Edge]
    valid: bool = True
    expiry: Optional[float] = None

    def disjoint_from(self, other: "PathRecord") -> bool:
        return not (self.edges & other.edges)

    def live(self, now: float) -> bool:
        return self.valid and (self.expiry is None or self.expiry > now)


def path_edges(
    path: List[Tuple[int, int]], receiver: int, sender: int, upto_index: int
) -> FrozenSet[Edge]:
    """Directed edges of the route from ``receiver`` to ``path[upto_index]``.

    The accumulated path reads originator-first; the route back to the
    address at ``upto_index`` goes receiver -> sender -> ... -> address.
    """
    edges: Set[Edge] = {(receiver, sender)}
    previous = sender
    for index in range(len(path) - 1, upto_index - 1, -1):
        node = path[index][0]
        if node != previous:
            edges.add((previous, node))
            previous = node
    return frozenset(edges)


class MultipathDymoState(DymoState):
    """Replacement S element: a path list per route."""

    def __init__(self, max_paths: int = MAX_PATHS) -> None:
        super().__init__()
        self.max_paths = max_paths
        self.paths: Dict[int, List[PathRecord]] = {}
        #: (originator, seqnum) -> edge sets of RREQ copies already handled
        self.forwarded_paths: Dict[Tuple[int, int], List[FrozenSet[Edge]]] = {}
        self.path_switches = 0

    # -- path management ------------------------------------------------------

    def _sync_best(self, destination: int, best: PathRecord) -> None:
        self.table.add(
            Route(
                destination=destination,
                next_hop=best.next_hop,
                hop_count=best.hop_count,
                seqnum=best.seqnum,
                expiry=best.expiry,
            )
        )

    def install_path(self, destination: int, record: PathRecord) -> Optional[str]:
        """Try to add a path; returns "best", "alternative" or ``None``.

        A fresher sequence number supersedes every stored path; within the
        same freshness, a path is only kept if link-disjoint from all
        stored paths (or strictly shorter than the best).
        """
        now = self.current_time()
        records = [r for r in self.paths.get(destination, []) if r.live(now)]
        if records and seq_newer(record.seqnum, records[0].seqnum):
            records = []
        elif records and seq_newer(records[0].seqnum, record.seqnum):
            return None
        if any(not record.disjoint_from(existing) for existing in records):
            # Shares a link with a stored path: accept only as a better best.
            if records and record.hop_count < min(r.hop_count for r in records):
                records = [r for r in records if record.disjoint_from(r)]
            else:
                return None
        if len(records) >= self.max_paths:
            return None
        records.append(record)
        records.sort(key=lambda r: (r.hop_count, r.next_hop))
        self.paths[destination] = records
        best = records[0]
        self._sync_best(destination, best)
        return "best" if best is record else "alternative"

    def alternatives(self, destination: int) -> List[PathRecord]:
        now = self.current_time()
        return [r for r in self.paths.get(destination, []) if r.live(now)]

    def drop_paths_via(
        self,
        destination: int,
        next_hop: int,
        refresh_to: Optional[float] = None,
    ) -> Optional[PathRecord]:
        """Drop paths through ``next_hop``; returns the new best, if any.

        ``refresh_to`` extends the surviving best path's lifetime — the
        failover path is about to carry traffic, so it gets a fresh lease.
        """
        now = self.current_time()
        records = [
            r
            for r in self.paths.get(destination, [])
            if r.live(now) and r.next_hop != next_hop
        ]
        self.paths[destination] = records
        if not records:
            self.table.invalidate(destination)
            return None
        best = records[0]
        if refresh_to is not None and (best.expiry is None or best.expiry < refresh_to):
            best.expiry = refresh_to
        self.path_switches += 1
        self._sync_best(destination, best)
        return best

    def _route_timeout(self) -> float:
        if self.protocol is not None:
            return self.protocol.config("route_timeout", 5.0)
        return 5.0

    def on_route_refreshed(self, destination: int, expiry: float) -> None:
        """Active traffic refreshed the route: extend the best path too."""
        route = self.table.get(destination)
        if route is None:
            return
        for record in self.paths.get(destination, []):
            if record.next_hop == route.next_hop:
                if record.expiry is None or record.expiry < expiry:
                    record.expiry = expiry

    def invalidate_via_next_hop(
        self, next_hop: int
    ) -> Tuple[List[Tuple[int, int, int]], List[int]]:
        switched: List[Tuple[int, int, int]] = []
        broken: List[int] = []
        refresh_to = self.current_time() + self._route_timeout()
        affected = [
            destination
            for destination, records in self.paths.items()
            if any(r.valid and r.next_hop == next_hop for r in records)
        ]
        for destination in affected:
            best = self.drop_paths_via(destination, next_hop, refresh_to=refresh_to)
            if best is None:
                broken.append(destination)
            else:
                switched.append((destination, best.next_hop, best.hop_count))
        # Routes known only to the base table (e.g. carried-over state).
        for route in self.table.routes_via(next_hop):
            if route.destination not in affected:
                self.table.invalidate(route.destination)
                broken.append(route.destination)
        return switched, broken

    # -- state transfer -----------------------------------------------------------

    def get_state(self) -> Dict[str, object]:
        state = super().get_state()
        state["paths"] = {
            destination: [
                (r.next_hop, r.hop_count, r.seqnum, set(r.edges), r.valid,
                 r.expiry)
                for r in records
            ]
            for destination, records in self.paths.items()
        }
        return state

    def set_state(self, state: Dict[str, object]) -> None:
        super().set_state(state)
        paths = state.get("paths")
        if isinstance(paths, dict):
            for destination, records in paths.items():
                self.paths[destination] = [
                    PathRecord(nh, hc, seq, frozenset(edges), valid, expiry)
                    for nh, hc, seq, edges, valid, expiry in records
                ]


class MultipathReHandler(ReHandler):
    """Replacement RE Handler: duplicates become alternative paths."""

    def __init__(self, cf: "DymoCF") -> None:
        super().__init__(cf, name="re-handler")
        self.alternatives_learned = 0
        #: one reply seqnum per discovery: alternative-path RREPs for the
        #: same RREQ must share it, or the freshest reply would supersede
        #: (and erase) the other learned paths at the originator.
        self._reply_seq: Dict[Tuple[int, int], int] = {}

    @property
    def mp_state(self) -> MultipathDymoState:
        return self.cf.dymo_state  # type: ignore[return-value]

    def learn_from_path(self, info: ReInfo, event: Event) -> None:
        cf = self.cf
        sender = event.source
        if sender is None:
            return
        expiry = event.timestamp + cf.route_timeout()
        for index, (address, seqnum) in enumerate(info.path):
            if address == cf.local_address:
                continue
            record = PathRecord(
                next_hop=sender,
                hop_count=info.distance_to(index),
                seqnum=seqnum,
                edges=path_edges(info.path, cf.local_address, sender, index),
                expiry=expiry,
            )
            outcome = self.mp_state.install_path(address, record)
            if outcome == "best":
                cf.after_route_installed(address, record.next_hop, record.hop_count)
            elif outcome == "alternative":
                self.alternatives_learned += 1

    def handle_rreq(self, message: Message, info: ReInfo, event: Event) -> None:
        cf = self.cf
        state = self.mp_state
        key = (info.originator, info.originator_seqnum)
        handled = state.forwarded_paths.setdefault(key, [])
        arrival = path_edges(info.path, cf.local_address, event.source, 0)
        if state.rreq_is_duplicate(info.originator, info.originator_seqnum):
            # Duplicate RREQs are *processed* (not discarded) when they
            # arrived over a link-disjoint path — up to the path budget.
            if len(handled) >= state.max_paths:
                self.duplicates_dropped += 1
                return
            if any(arrival & previous for previous in handled):
                self.duplicates_dropped += 1
                return
        else:
            state.note_rreq(info.originator, info.originator_seqnum, event.timestamp)
        handled.append(arrival)
        if info.target == cf.local_address:
            self.answer_rreq_via(info, event.source)
            return
        if message.forwardable and cf.may_relay_broadcast(event):
            relayed = extend_re(message, info, cf.local_address,
                                state.own_seqnum)
            cf.send_message("RE_OUT", relayed)

    def answer_rreq_via(self, info: ReInfo, previous_hop: int) -> None:
        """Reply along the arrival link so each RREP traces its own path."""
        cf = self.cf
        key = (info.originator, info.originator_seqnum)
        seqnum = self._reply_seq.get(key)
        if seqnum is None:
            seqnum = cf.dymo_state.next_seqnum()
            self._reply_seq[key] = seqnum
            if len(self._reply_seq) > 512:
                self._reply_seq.clear()
        rrep = build_re(
            RREP,
            target=info.originator,
            path=[(cf.local_address, seqnum)],
            hop_limit=cf.net_diameter(),
            target_seqnum=info.originator_seqnum,
        )
        cf.send_message("RE_OUT", rrep, link_dst=previous_hop)


class MultipathRerrHandler(RerrHandler):
    """Replacement RERR Handler: fail over before reporting errors."""

    def __init__(self, cf: "DymoCF") -> None:
        super().__init__(cf, name="rerr-handler")
        self.failovers = 0

    @property
    def mp_state(self) -> MultipathDymoState:
        return self.cf.dymo_state  # type: ignore[return-value]

    def handle_send_route_err(self, event: Event) -> None:
        cf = self.cf
        destination = event.payload["destination"]
        route = self.mp_state.table.get(destination)
        failing_hop = route.next_hop if route is not None else None
        refresh_to = event.timestamp + cf.route_timeout()
        best = (
            self.mp_state.drop_paths_via(destination, failing_hop,
                                         refresh_to=refresh_to)
            if failing_hop is not None
            else None
        )
        if best is not None:
            # An alternative exists: install it, no RERR needed.
            self.failovers += 1
            cf.sys_state().add_route(
                destination, best.next_hop, best.hop_count,
                lifetime=cf.route_timeout(),
            )
            return
        cf.originate_rerr([destination], invalidate=True)

    def affected_destinations(self, unreachable, event: Event):
        """Fail over where possible; only propagate what actually broke."""
        cf = self.cf
        still_broken = []
        for destination, _seqnum in unreachable:
            route = self.mp_state.table.get(destination)
            if route is None or not route.valid or route.next_hop != event.source:
                continue
            best = self.mp_state.drop_paths_via(
                destination, event.source,
                refresh_to=event.timestamp + cf.route_timeout(),
            )
            if best is not None:
                self.failovers += 1
                cf.sys_state().add_route(
                    destination, best.next_hop, best.hop_count,
                    lifetime=cf.route_timeout(),
                )
            else:
                still_broken.append(destination)
        return still_broken


def apply_multipath(deployment: "ManetKit") -> None:
    """Reconfigure a running DYMO to multipath (three replacements)."""
    reconfig = deployment.reconfig
    reconfig.replace_component("dymo", "dymo-state", MultipathDymoState())
    dymo = deployment.protocol("dymo")
    reconfig.replace_component("dymo", "re-handler", MultipathReHandler(dymo))
    reconfig.replace_component("dymo", "rerr-handler", MultipathRerrHandler(dymo))


def remove_multipath(deployment: "ManetKit") -> None:
    """Back out to single-path DYMO (state carries over)."""
    from repro.protocols.dymo.handlers import ReHandler as StandardRe
    from repro.protocols.dymo.handlers import RerrHandler as StandardRerr

    reconfig = deployment.reconfig
    reconfig.replace_component("dymo", "dymo-state", DymoState())
    dymo = deployment.protocol("dymo")
    reconfig.replace_component("dymo", "re-handler", StandardRe(dymo))
    reconfig.replace_component("dymo", "rerr-handler", StandardRerr(dymo))
