"""DYMO optimised flooding (paper section 5.2).

"In the optimised flooding variant, DYMO, like OLSR, uses Multipoint
Relaying as a flooding optimisation.  This curbs the overhead associated
with broadcasting control messages when a network topology is dense,
although at the expense of maintaining additional state.  To apply this
variation, the Neighbour Detection CF is simply replaced with the MPR
ManetProtocol instance.  If a co-existing OLSR ManetProtocol instance is
already deployed in the framework, then the MPR CF is directly shareable
between the reactive and proactive protocols, thus leading to a leaner
deployment."
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.manetkit import ManetKit


def apply_gossip_flooding(
    deployment: "ManetKit", p: float = 0.65, k: int = 1
) -> None:
    """Switch DYMO's flooding to GOSSIP1(p, k) probabilistic relaying.

    "Various epidemic/gossip algorithms can also be applied in this
    context" (paper section 2, citing Haas, Halpern & Li).  Unlike the MPR
    variant, gossip needs no extra state — each node flips a coin — which
    makes it attractive on very constrained nodes, at the price of a small
    chance that a flood dies out.
    """
    if not 0.0 < p <= 1.0:
        raise ValueError(f"gossip probability must be in (0, 1]: {p}")
    if k < 0:
        raise ValueError(f"gossip guaranteed-hops must be >= 0: {k}")
    dymo = deployment.protocol("dymo")
    dymo.configurator.update({"flooding": "gossip", "gossip_p": p, "gossip_k": k})


def remove_gossip_flooding(deployment: "ManetKit") -> None:
    """Revert to blind flooding."""
    deployment.protocol("dymo").configurator.set("flooding", "blind")


def apply_optimised_flooding(deployment: "ManetKit") -> None:
    """Switch DYMO's flooding from blind rebroadcast to MPR relaying.

    Replaces the Neighbour Detection CF with an MPR CF (sharing an already
    deployed one where present) and flips DYMO's flooding policy; DYMO
    keeps receiving ``NHOOD_CHANGE``/``LINK_BREAK`` because the MPR CF
    provides the same events.
    """
    from repro.protocols.mpr.protocol import MprCF

    dymo = deployment.protocol("dymo")
    if deployment.manager.unit("mpr") is None:
        deployment.deploy(MprCF(deployment.ontology))
    neighbour_source = dymo.config("neighbour_source")
    if deployment.manager.unit(neighbour_source) is not None:
        deployment.undeploy(neighbour_source)
    dymo.configurator.set("flooding", "mpr")


def remove_optimised_flooding(deployment: "ManetKit") -> None:
    """Revert to blind flooding over the Neighbour Detection CF.

    The MPR CF is only undeployed when nothing else (e.g. a co-deployed
    OLSR) is still using it.
    """
    from repro.core.neighbour_detection import NeighbourDetectionCF

    dymo = deployment.protocol("dymo")
    dymo.configurator.set("flooding", "blind")
    neighbour_source = dymo.config("neighbour_source")
    if deployment.manager.unit(neighbour_source) is None:
        deployment.deploy(NeighbourDetectionCF(deployment.ontology))
    olsr_deployed = any(
        getattr(unit, "protocol_class", None) == "proactive"
        for unit in deployment.units()
    )
    if not olsr_deployed and deployment.manager.unit("mpr") is not None:
        deployment.undeploy("mpr")
