"""DYMO (Dynamic MANET On-demand routing) in MANETKit (paper section 5.2).

The reactive case study: one ManetProtocol instance atop the System CF,
using the Neighbour Detection CF for link sensing and the System CF's
NetLink plug-in for the reactive triggers (``NO_ROUTE``, ``ROUTE_UPDATE``,
``SEND_ROUTE_ERR``) and for buffered-packet re-injection (``ROUTE_FOUND``).

Variants (both runtime reconfigurations):

* :mod:`repro.protocols.dymo.flooding` — optimised (MPR-based) flooding of
  route discoveries, sharing a co-deployed MPR CF where one exists;
* :mod:`repro.protocols.dymo.multipath` — link-disjoint multipath DYMO
  after Galvez & Ruiz [10].
"""

from repro.protocols.dymo.state import DymoRoute, DymoState, PendingDiscovery
from repro.protocols.dymo.messages import ReInfo, build_re, build_rerr, parse_re
from repro.protocols.dymo.handlers import (
    KernelEventsHandler,
    NeighbourhoodHandler,
    ReHandler,
    RerrHandler,
    UerrHandler,
)
from repro.protocols.dymo.protocol import DymoCF
from repro.protocols.dymo.multipath import (
    MultipathDymoState,
    MultipathReHandler,
    MultipathRerrHandler,
    apply_multipath,
    remove_multipath,
)
from repro.protocols.dymo.flooding import (
    apply_gossip_flooding,
    apply_optimised_flooding,
    remove_gossip_flooding,
    remove_optimised_flooding,
)

__all__ = [
    "DymoRoute",
    "DymoState",
    "PendingDiscovery",
    "ReInfo",
    "build_re",
    "build_rerr",
    "parse_re",
    "ReHandler",
    "RerrHandler",
    "UerrHandler",
    "KernelEventsHandler",
    "NeighbourhoodHandler",
    "DymoCF",
    "MultipathDymoState",
    "MultipathReHandler",
    "MultipathRerrHandler",
    "apply_multipath",
    "remove_multipath",
    "apply_optimised_flooding",
    "remove_optimised_flooding",
    "apply_gossip_flooding",
    "remove_gossip_flooding",
]
