"""Fish-eye TC scoping (paper section 5.1, citing FSR [34]).

"The purpose of the fish-eye routing variant is to aid scalability when
networks grow large, albeit at the cost of sub-optimal routing to distant
nodes.  It basically works by refreshing topology information more
frequently for nearby nodes than for distant nodes.  This variant is
straightforwardly implemented as a component that modifies TC_OUT events
according to the fish eye strategy (in fact it works by modifying the TTL
and timing of OLSR Topology Change messages).  The component is specified
to both require and provide TC_OUT events; and so all that is required to
insert it into the protocol graph is to request re-evaluation of the
automatic event-tuple-based binding process.  This automatically results
in the component being interposed in the path of TC_OUT events."

The interposition uses the *exclusive-receive* mechanism (section 4.2,
footnote 2): the fish-eye unit requires ``TC_OUT`` exclusively, so
originated and relayed TCs flow to it instead of straight to the System
CF; it re-emits them — rescoped if originated locally, untouched if they
are relays — and loop avoidance ensures its own re-emissions bypass it.
"""

from __future__ import annotations

from typing import Sequence, TYPE_CHECKING

from repro.core.manet_protocol import EventHandlerComponent, ManetProtocol
from repro.events.event import Event
from repro.events.registry import EventTuple, Requirement
from repro.events.types import EventOntology
from repro.packetbb.message import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.manetkit import ManetKit

#: The classic olsrd fish-eye TTL cycle: most TCs reach only the local
#: neighbourhood; every 8th TC floods the whole network.
DEFAULT_TTL_SEQUENCE = (255, 1, 2, 1, 4, 1, 2, 1)

#: Hazy-Sighted Link State scoping (paper section 2, citing Santivanez et
#: al. [26]): TTL doubles each period — 2, 4, 8, ... with a periodic
#: network-wide refresh — which is provably near-optimal as the network
#: grows in diameter.  Expressed here as a TTL sequence for the same
#: interposer component; HSLS and fish-eye differ only in this schedule.
HSLS_TTL_SEQUENCE = (2, 4, 2, 8, 2, 4, 2, 255)


class _FishEyeScoper(EventHandlerComponent):
    handles = ("TC_OUT",)

    def __init__(self, cf: "FishEyeComponent") -> None:
        super().__init__("fisheye-scoper")
        self.cf = cf
        self.rescoped = 0
        self.passed_through = 0

    def handle(self, event: Event) -> None:
        message: Message = event.payload
        if event.meta.get("relay"):
            # Only *originated* TCs are rescoped; relays keep the TTL the
            # originator chose.
            self.passed_through += 1
            self.cf.emit("TC_OUT", payload=message, meta=dict(event.meta))
            return
        sequence = self.cf.ttl_sequence
        ttl = sequence[self.cf.cycle_index % len(sequence)]
        self.cf.cycle_index += 1
        self.rescoped += 1
        scoped = Message(
            message.msg_type,
            originator=message.originator,
            hop_limit=ttl,
            hop_count=message.hop_count,
            seqnum=message.seqnum,
            tlv_block=message.tlv_block,
            address_blocks=message.address_blocks,
        )
        self.cf.emit("TC_OUT", payload=scoped, meta=dict(event.meta))


class FishEyeComponent(ManetProtocol):
    """The interposable fish-eye unit (a minimal CFS unit)."""

    protocol_class = "service"

    def __init__(
        self,
        ontology: EventOntology,
        ttl_sequence: Sequence[int] = DEFAULT_TTL_SEQUENCE,
        name: str = "fisheye",
    ) -> None:
        super().__init__(name, ontology)
        if not ttl_sequence:
            raise ValueError("ttl_sequence must not be empty")
        self.ttl_sequence = tuple(ttl_sequence)
        self.cycle_index = 0
        self.scoper = _FishEyeScoper(self)
        self.add_handler(self.scoper)
        self.set_event_tuple(
            EventTuple(
                required=[Requirement("TC_OUT", exclusive=True)],
                provided=["TC_OUT"],
            )
        )


def apply_fisheye(
    deployment: "ManetKit",
    ttl_sequence: Sequence[int] = DEFAULT_TTL_SEQUENCE,
) -> FishEyeComponent:
    """Insert fish-eye scoping into a running OLSR deployment."""
    fisheye = FishEyeComponent(deployment.ontology, ttl_sequence)
    deployment.deploy(fisheye)
    return fisheye


def remove_fisheye(deployment: "ManetKit") -> None:
    """Remove the variant; the tuple-based wiring heals automatically."""
    deployment.undeploy("fisheye")
