"""OLSR route calculation.

Builds the routing graph from three information sources — the symmetric
1-hop neighbourhood and the 2-hop map (both read from the MPR CF's S
element via a direct call, a deliberate cross-layer interaction the event
architecture permits) and the learned topology set — and runs a
breadth-first shortest-path computation rooted at the local node.  The
resulting routes are written to the kernel table through the System CF's
``ISysState`` interface.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Set, Tuple, TYPE_CHECKING

from repro.opencom.component import Component
from repro.sim.kernel_table import KernelRoute

if TYPE_CHECKING:  # pragma: no cover
    from repro.protocols.olsr.protocol import OlsrCF


class RouteCalculator(Component):
    """Shortest-path (min hop count) route computation."""

    def __init__(self, cf: "OlsrCF") -> None:
        super().__init__("route-calculator")
        self.cf = cf
        #: BFS runs actually performed (cache hits are not computations).
        self.computations = 0
        self.last_route_count = 0
        self.cache_hits = 0
        self._cache_key: Optional[tuple] = None
        self._cached_routes: Optional[Dict[int, Tuple[int, int]]] = None
        self.provide_interface("IRouteCalc", "IRouteCalc")

    def _cache_token(self) -> Optional[tuple]:
        """Fingerprint of every input ``compute`` reads, or ``None``.

        The momentary symmetric-neighbour set captures link/hysteresis
        timing; the two version counters capture 2-hop content and the
        learned topology edge set.  Subclasses whose ``compute`` reads
        inputs outside this fingerprint (residual power) return ``None``
        to disable caching.
        """
        cf = self.cf
        try:
            mpr_state = cf.mpr().mpr_state
        except LookupError:
            return None
        return (
            tuple(cf.symmetric_neighbours()),
            mpr_state.nhood_version,
            cf.olsr_state.topology_version,
        )

    def build_graph(self) -> Dict[int, Set[int]]:
        """Adjacency sets from neighbourhood + 2-hop + topology info."""
        cf = self.cf
        local = cf.local_address
        graph: Dict[int, Set[int]] = {local: set()}
        sym = cf.symmetric_neighbours()
        for neighbour in sym:
            graph[local].add(neighbour)
            graph.setdefault(neighbour, set()).add(local)
        for neighbour, two_hops in cf.two_hop_map().items():
            if neighbour not in graph.get(local, set()):
                continue
            for two_hop in two_hops:
                graph.setdefault(neighbour, set()).add(two_hop)
                graph.setdefault(two_hop, set())
        for last_hop, destination in cf.olsr_state.topology_edges():
            graph.setdefault(last_hop, set()).add(destination)
            graph.setdefault(destination, set())
        return graph

    def compute(self) -> Dict[int, Tuple[int, int]]:
        """BFS from the local node: dest -> (next hop, hop count)."""
        self.computations += 1
        cf = self.cf
        local = cf.local_address
        graph = self.build_graph()
        routes: Dict[int, Tuple[int, int]] = {}
        # (node, first_hop, distance); neighbours sorted for determinism.
        frontier = deque(
            (neighbour, neighbour, 1) for neighbour in sorted(graph[local])
        )
        visited: Set[int] = {local}
        while frontier:
            node, first_hop, distance = frontier.popleft()
            if node in visited:
                continue
            visited.add(node)
            routes[node] = (first_hop, distance)
            for successor in sorted(graph.get(node, ())):
                if successor not in visited:
                    frontier.append((successor, first_hop, distance + 1))
        return routes

    def install(self) -> int:
        """Compute and write the kernel table; returns the route count."""
        cf = self.cf
        now = cf.deployment.now
        cf.olsr_state.purge_topology(now)
        token = self._cache_token()
        if token is not None and token == self._cache_key:
            self.cache_hits += 1
            # Copy: ``set_state`` merges into the mirror in place, so the
            # cached dict must never be aliased to ``olsr_state.routes``.
            routes = dict(self._cached_routes)
        else:
            routes = self.compute()
            self._cache_key = token
            self._cached_routes = dict(routes) if token is not None else None
        kernel_routes = [
            KernelRoute(destination, next_hop, metric=hops)
            for destination, (next_hop, hops) in sorted(routes.items())
        ]
        # Replace only OLSR-owned routes: a co-deployed reactive protocol's
        # kernel entries must survive proactive recomputation.
        cf.sys_state().replace_all(kernel_routes, proto=cf.name)
        cf.olsr_state.routes = routes
        self.last_route_count = len(routes)
        return len(routes)
