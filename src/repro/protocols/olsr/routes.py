"""OLSR route calculation.

Builds the routing graph from three information sources — the symmetric
1-hop neighbourhood and the 2-hop map (both read from the MPR CF's S
element via a direct call, a deliberate cross-layer interaction the event
architecture permits) and the learned topology set — and keeps a
shortest-path tree over it.  The resulting routes are written to the
kernel table through the System CF's ``ISysState`` interface.

Two regimes:

* **Incremental** (the default): the graph and its shortest-path tree are
  maintained across installs by :class:`~repro.protocols.olsr.spt.IncrementalSpt`.
  Each install classifies what changed since the last one — symmetric-link
  add/drop (momentary set diff, which also captures hysteresis flips and
  time-based expiry), 2-hop listing edits (diffed per neighbour, scoped to
  the affected entries), topology tuple add/drop (replayed from the
  journal in :class:`~repro.protocols.olsr.state.OlsrState`) — and applies
  the resulting edge delta as one localized repair.  Weight-neutral
  refreshes (HELLOs/TCs that only extend expiries) bump no version and
  cost nothing beyond the fingerprint check.  Structural invalidation
  (journal gap or state transfer) falls back to a full rebuild.
* **Legacy full** (power-aware subclass): recompute from scratch each
  install, since its inputs (residual power) sit outside every version
  fingerprint.

The kernel table is rewritten only when the route set changed or another
writer touched the table since our last install — a no-op install is a
version check, not an O(routes) replace.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.opencom.component import Component
from repro.protocols.olsr.spt import Edge, IncrementalSpt, SptInconsistency
from repro.sim.kernel_table import KernelRoute

if TYPE_CHECKING:  # pragma: no cover
    from repro.protocols.olsr.protocol import OlsrCF


class RouteCalculator(Component):
    """Shortest-path (min hop count) route computation."""

    #: Subclasses whose ``compute`` reads inputs outside the delta sources
    #: (e.g. residual power) set this False to run the legacy full path.
    incremental = True
    #: Test hook: force a full rebuild on every install while keeping the
    #: rest of the pipeline (change detection, kernel skip) identical —
    #: the behaviour-equivalence suite diffs traces across this switch.
    force_full = False

    def __init__(self, cf: "OlsrCF") -> None:
        super().__init__("route-calculator")
        self.cf = cf
        #: full recomputations actually performed (BFS runs / rebuilds).
        self.computations = 0
        self.last_route_count = 0
        #: no-op installs: every input fingerprint unchanged.
        self.cache_hits = 0
        #: localized repairs applied instead of full recomputation.
        self.incremental_updates = 0
        #: structural invalidations that forced a rebuild.
        self.fallbacks = 0
        #: kernel-table writes skipped because nothing changed.
        self.kernel_skips = 0
        self._cache_key: Optional[tuple] = None
        self._cached_routes: Optional[Dict[int, Tuple[int, int]]] = None
        self._engine: Optional[IncrementalSpt] = None
        self._last_sym: Tuple[int, ...] = ()
        self._last_blocks: Dict[int, frozenset] = {}
        self._last_nhood_version = -1
        self._last_topo_version = -1
        self._last_kernel_version: Optional[int] = None
        self._counters: Optional[tuple] = None
        self.provide_interface("IRouteCalc", "IRouteCalc")

    def _cache_token(self) -> Optional[tuple]:
        """Fingerprint of every input ``compute`` reads, or ``None``.

        The momentary symmetric-neighbour set captures link/hysteresis
        timing; the two version counters capture 2-hop content and the
        learned topology edge set.  Subclasses whose ``compute`` reads
        inputs outside this fingerprint (residual power) return ``None``
        to disable caching.
        """
        cf = self.cf
        try:
            mpr_state = cf.mpr().mpr_state
        except LookupError:
            return None
        return (
            tuple(cf.symmetric_neighbours()),
            mpr_state.nhood_version,
            cf.olsr_state.topology_version,
        )

    def build_graph(self) -> Dict[int, Set[int]]:
        """Adjacency sets from neighbourhood + 2-hop + topology info."""
        cf = self.cf
        local = cf.local_address
        graph: Dict[int, Set[int]] = {local: set()}
        sym = cf.symmetric_neighbours()
        for neighbour in sym:
            graph[local].add(neighbour)
            graph.setdefault(neighbour, set()).add(local)
        for neighbour, two_hops in cf.two_hop_map().items():
            if neighbour not in graph.get(local, set()):
                continue
            for two_hop in two_hops:
                graph.setdefault(neighbour, set()).add(two_hop)
                graph.setdefault(two_hop, set())
        for last_hop, destination in cf.olsr_state.topology_edges():
            graph.setdefault(last_hop, set()).add(destination)
            graph.setdefault(destination, set())
        return graph

    def compute(self) -> Dict[int, Tuple[int, int]]:
        """BFS from the local node: dest -> (next hop, hop count)."""
        self.computations += 1
        cf = self.cf
        local = cf.local_address
        graph = self.build_graph()
        routes: Dict[int, Tuple[int, int]] = {}
        # (node, first_hop, distance); neighbours sorted for determinism.
        frontier = deque(
            (neighbour, neighbour, 1) for neighbour in sorted(graph[local])
        )
        visited: Set[int] = {local}
        while frontier:
            node, first_hop, distance = frontier.popleft()
            if node in visited:
                continue
            visited.add(node)
            routes[node] = (first_hop, distance)
            for successor in sorted(graph.get(node, ())):
                if successor not in visited:
                    frontier.append((successor, first_hop, distance + 1))
        return routes

    # -- incremental machinery ---------------------------------------------

    def _rebuild_engine(self, sym: Tuple[int, ...], mpr_state) -> bool:
        """Reseed the SPT engine from the full current graph."""
        cf = self.cf
        local = cf.local_address
        edges: List[Edge] = []
        blocks: Dict[int, frozenset] = {}
        for neighbour in sym:
            edges.append((local, neighbour))
            edges.append((neighbour, local))
            block = frozenset(mpr_state.two_hop.get(neighbour, ()))
            blocks[neighbour] = block
            for two_hop in block:
                edges.append((neighbour, two_hop))
        edges.extend(cf.olsr_state.topology_edges())
        if self._engine is None:
            self._engine = IncrementalSpt(local)
        self._last_blocks = blocks
        self.computations += 1
        return self._engine.rebuild(edges)

    def _neighbourhood_deltas(
        self, sym: Tuple[int, ...], nhood_changed: bool, mpr_state
    ) -> Tuple[List[Edge], List[Edge]]:
        """Edge deltas from the MPR side since the last install.

        The symmetric set is diffed against the previous momentary set
        (capturing time-based expiry and hysteresis flips, which bump no
        version); 2-hop listings are diffed per *continuing* neighbour only
        when the neighbourhood version moved — work scoped to the 1/2-hop
        neighbourhood, never the whole network.
        """
        local = self.cf.local_address
        added: List[Edge] = []
        removed: List[Edge] = []
        blocks = self._last_blocks
        new_sym = set(sym)
        prev_sym = set(self._last_sym)
        for neighbour in prev_sym - new_sym:
            removed.append((local, neighbour))
            removed.append((neighbour, local))
            for two_hop in blocks.pop(neighbour, ()):
                removed.append((neighbour, two_hop))
        for neighbour in new_sym - prev_sym:
            added.append((local, neighbour))
            added.append((neighbour, local))
            block = frozenset(mpr_state.two_hop.get(neighbour, ()))
            blocks[neighbour] = block
            for two_hop in block:
                added.append((neighbour, two_hop))
        if nhood_changed:
            for neighbour in new_sym & prev_sym:
                new_block = frozenset(mpr_state.two_hop.get(neighbour, ()))
                old_block = blocks[neighbour]
                if new_block != old_block:
                    for two_hop in new_block - old_block:
                        added.append((neighbour, two_hop))
                    for two_hop in old_block - new_block:
                        removed.append((neighbour, two_hop))
                    blocks[neighbour] = new_block
        return added, removed

    def _observability(self):
        """(incremental, full, fallback, noop) counters, or None."""
        if self._counters is None:
            node = self.cf.deployment.node
            obs = getattr(node, "obs", None)
            if obs is None:
                self._counters = ()
            else:
                registry = obs.registry
                node_id = node.node_id
                self._counters = tuple(
                    registry.counter(f"route_calc.{kind}", node=node_id)
                    for kind in ("incremental", "full", "fallback", "noop")
                )
        return self._counters or None

    _MODE_INDEX = {"incremental": 0, "full": 1, "fallback": 2, "noop": 3}

    def install(self) -> int:
        """Refresh routes and write the kernel table; returns the count."""
        cf = self.cf
        now = cf.deployment.now
        cf.olsr_state.purge_topology(now)
        if not self.incremental:
            return self._install_legacy()

        olsr_state = cf.olsr_state
        mpr_state = cf.mpr().mpr_state
        sym = tuple(cf.symmetric_neighbours())
        nhood_version = mpr_state.nhood_version
        topo_version = olsr_state.topology_version

        changed = False
        if self._engine is None or self.force_full:
            changed = self._rebuild_engine(sym, mpr_state)
            mode = "full"
        elif (
            sym == self._last_sym
            and nhood_version == self._last_nhood_version
            and topo_version == self._last_topo_version
        ):
            self.cache_hits += 1
            mode = "noop"
        else:
            topo_deltas = []
            if topo_version != self._last_topo_version:
                topo_deltas = olsr_state.topology_deltas_since(self._last_topo_version)
            if topo_deltas is None:
                changed = self._rebuild_engine(sym, mpr_state)
                self.fallbacks += 1
                mode = "fallback"
            else:
                nhood_changed = nhood_version != self._last_nhood_version
                added, removed = self._neighbourhood_deltas(
                    sym, nhood_changed, mpr_state
                )
                for batch_added, batch_removed in topo_deltas:
                    added.extend(batch_added)
                    removed.extend(batch_removed)
                try:
                    changed = self._engine.apply(added, removed)
                    self.incremental_updates += 1
                    mode = "incremental"
                except SptInconsistency:
                    changed = self._rebuild_engine(sym, mpr_state)
                    self.fallbacks += 1
                    mode = "fallback"
        self._last_sym = sym
        self._last_nhood_version = nhood_version
        self._last_topo_version = topo_version

        routes = self._engine.routes
        count = self._finish_install(routes, changed)

        counters = self._observability()
        if counters is not None:
            counters[self._MODE_INDEX[mode]].inc()
            obs = self.cf.deployment.node.obs
            profiler = obs.profiler
            if profiler is not None:
                # The install mode is only known after the work ran, so
                # attribute it as an event count (the wall time already
                # lands in the enclosing unit.process frame).
                profiler.count("route_calc.install", mode)
            if mode != "noop":
                tracer = obs.tracer
                if tracer is not None and tracer.enabled:
                    tracer.event(
                        "route_calc.update",
                        node=self.cf.deployment.node.node_id,
                        mode=mode,
                        routes=count,
                        changed=changed,
                    )
        return count

    def _install_legacy(self) -> int:
        """Token-cached full recomputation (power-aware subclasses)."""
        cf = self.cf
        token = self._cache_token()
        if token is not None and token == self._cache_key:
            self.cache_hits += 1
            # Copy: ``set_state`` merges into the mirror in place, so the
            # cached dict must never be aliased to ``olsr_state.routes``.
            routes = dict(self._cached_routes)
            changed = False
        else:
            routes = self.compute()
            changed = routes != cf.olsr_state.routes
            self._cache_key = token
            self._cached_routes = dict(routes) if token is not None else None
        return self._finish_install(routes, changed)

    def _finish_install(
        self, routes: Dict[int, Tuple[int, int]], changed: bool
    ) -> int:
        """Write the kernel table (unless provably redundant) + the mirror."""
        cf = self.cf
        sys_state = cf.sys_state()
        kernel_version = sys_state.kernel_version()
        if changed or self._last_kernel_version != kernel_version:
            kernel_routes = [
                KernelRoute(destination, next_hop, metric=hops)
                for destination, (next_hop, hops) in sorted(routes.items())
            ]
            # Replace only OLSR-owned routes: a co-deployed reactive
            # protocol's kernel entries must survive proactive recomputation.
            sys_state.replace_all(kernel_routes, proto=cf.name)
            self._last_kernel_version = sys_state.kernel_version()
        else:
            self.kernel_skips += 1
        # The incremental path aliases the mirror to the engine's live view
        # (kept consistent because any state transfer invalidates the
        # journal and forces a rebuild); the legacy path hands over a
        # private dict, as before.
        cf.olsr_state.routes = routes
        self.last_route_count = len(routes)
        return len(routes)
