"""Incremental shortest-path tree maintenance for OLSR route calculation.

The full recomputation in :meth:`RouteCalculator.compute` is a BFS over the
merged routing graph (symmetric links, gated 2-hop listings, learned
topology tuples).  At scale that BFS — and the kernel-table rewrite behind
it — dominates the run: every received TC triggers a recomputation whose
cost is proportional to the *whole network*, even when the delta is one
edge.  This module keeps the shortest-path tree alive across installs and
repairs it locally, Ramalingam–Reps style: a batch of edge insertions and
deletions first identifies the affected region (vertices whose distance
may have changed), then re-settles only that region with a Dijkstra-like
relaxation seeded from its unaffected fringe, and finally repairs the
first-hop assignment level by level.

Edges are **reference counted**: the routing graph derives one arc from
several information sources at once (a symmetric link, a 2-hop listing and
a topology tuple can all assert the same arc), so an arc leaves the graph
only when its last contributor retracts it.

The maintained invariant matches the full BFS exactly.  The sorted-adjacency
FIFO BFS installs, for every reachable vertex ``v``, the first hop of the
lexicographically smallest shortest path — which satisfies the order-free
local recurrence::

    fhop(v) = min over predecessors p with dist(p) == dist(v) - 1
              of (v if p == root else fhop(p))

Because the recurrence only looks one level up, it can be repaired
incrementally in ascending-distance order, and recomputing it from scratch
in any vertex order gives the identical result — that equivalence is pinned
by the property suite in ``tests/properties/test_incremental_routes.py``.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Set, Tuple

Edge = Tuple[int, int]

_INF = float("inf")


class SptInconsistency(ValueError):
    """A delta retracted an edge the engine never saw asserted.

    Raised instead of guessing: the caller's delta bookkeeping is out of
    sync with the graph, so the only safe reaction is a full rebuild.
    """


class IncrementalSpt:
    """Dynamic single-source shortest-path tree on a unit-weight digraph."""

    __slots__ = ("root", "_ref", "_succ", "_pred", "dist", "fhop", "routes")

    def __init__(self, root: int) -> None:
        self.root = root
        #: edge -> number of information sources currently asserting it
        self._ref: Dict[Edge, int] = {}
        self._succ: Dict[int, Set[int]] = {}
        self._pred: Dict[int, Set[int]] = {}
        #: hop distance from the root (root included, at 0)
        self.dist: Dict[int, int] = {root: 0}
        #: first hop of the lexicographically smallest shortest path
        self.fhop: Dict[int, int] = {}
        #: the installable view: dest -> (first hop, hop count).  Mutated in
        #: place so long-lived aliases (the OLSR route mirror) stay current.
        self.routes: Dict[int, Tuple[int, int]] = {}

    # -- full (re)build -----------------------------------------------------

    def rebuild(self, edges: Iterable[Edge]) -> bool:
        """Reset the graph to ``edges`` (counted) and recompute from scratch.

        Returns whether the route view changed.
        """
        self._ref = {}
        self._succ = {}
        self._pred = {}
        for edge in edges:
            self._ref[edge] = self._ref.get(edge, 0) + 1
            self._succ.setdefault(edge[0], set()).add(edge[1])
            self._pred.setdefault(edge[1], set()).add(edge[0])
        return self._recompute()

    def _recompute(self) -> bool:
        """Full BFS for dist + per-level recurrence for fhop."""
        root = self.root
        succ = self._succ
        dist: Dict[int, int] = {root: 0}
        levels: List[List[int]] = [[root]]
        frontier = [root]
        d = 0
        while frontier:
            d += 1
            next_frontier: List[int] = []
            for u in frontier:
                for v in succ.get(u, ()):
                    if v not in dist:
                        dist[v] = d
                        next_frontier.append(v)
            if next_frontier:
                levels.append(next_frontier)
            frontier = next_frontier
        fhop: Dict[int, int] = {}
        pred = self._pred
        for level_nodes in levels[1:]:
            for v in level_nodes:
                dv = dist[v]
                best: Optional[int] = None
                for p in pred.get(v, ()):
                    if dist.get(p) == dv - 1:
                        contrib = v if p == root else fhop[p]
                        if best is None or contrib < best:
                            best = contrib
                fhop[v] = best  # type: ignore[assignment]
        new_routes = {v: (fhop[v], dist[v]) for v in dist if v != root}
        changed = new_routes != self.routes
        self.dist = dist
        self.fhop = fhop
        self.routes.clear()
        self.routes.update(new_routes)
        return changed

    # -- incremental batch update ------------------------------------------

    def apply(self, added: Iterable[Edge], removed: Iterable[Edge]) -> bool:
        """Apply one batch of edge assertions/retractions; repair locally.

        Returns whether the route view changed.  Raises
        :class:`SptInconsistency` when a retraction has no matching
        assertion (caller bookkeeping bug — rebuild instead).
        """
        # Net the batch first: an arc retracted by one source and asserted
        # by another in the same batch must not transiently disappear.
        delta: Dict[Edge, int] = {}
        for edge in added:
            delta[edge] = delta.get(edge, 0) + 1
        for edge in removed:
            delta[edge] = delta.get(edge, 0) - 1
        real_added: List[Edge] = []
        real_removed: List[Edge] = []
        ref = self._ref
        for edge, count in delta.items():
            if count == 0:
                continue
            new_count = ref.get(edge, 0) + count
            if new_count < 0:
                raise SptInconsistency(f"retraction of unasserted edge {edge}")
            if new_count == 0:
                del ref[edge]
                real_removed.append(edge)
                self._succ[edge[0]].discard(edge[1])
                self._pred[edge[1]].discard(edge[0])
            else:
                was_absent = edge not in ref
                ref[edge] = new_count
                if was_absent:
                    real_added.append(edge)
                    self._succ.setdefault(edge[0], set()).add(edge[1])
                    self._pred.setdefault(edge[1], set()).add(edge[0])
        if not real_added and not real_removed:
            return False

        root = self.root
        dist = self.dist
        pred = self._pred
        succ = self._succ

        # Phase 1 — affected region.  A vertex is affected when every
        # shortest-path parent it had is gone or itself affected.  Working
        # strictly in ascending-distance order makes each level's verdict
        # final before the next level consults it.
        affected: Set[int] = set()
        touched_ok: Set[int] = set()
        buckets: Dict[int, Set[int]] = {}
        for u, v in real_removed:
            dv = dist.get(v)
            if dv is not None and v != root and dist.get(u) == dv - 1:
                buckets.setdefault(dv, set()).add(v)
        while buckets:
            d = min(buckets)
            for v in buckets.pop(d):
                if v in affected or dist.get(v) != d:
                    continue
                supported = False
                for p in pred.get(v, ()):
                    if dist.get(p) == d - 1 and p not in affected:
                        supported = True
                        break
                if supported:
                    touched_ok.add(v)
                    continue
                affected.add(v)
                for w in succ.get(v, ()):
                    if w != root and dist.get(w) == d + 1:
                        buckets.setdefault(d + 1, set()).add(w)

        # Phase 2 — re-settle the affected region plus insertion-driven
        # improvements with a lazy-deletion Dijkstra (unit weights).
        for v in affected:
            del dist[v]
        heap: List[Tuple[int, int]] = []
        for v in affected:
            best = _INF
            for p in pred.get(v, ()):
                dp = dist.get(p)
                if dp is not None and dp + 1 < best:
                    best = dp + 1
            if best is not _INF:
                heap.append((best, v))
        for u, v in real_added:
            du = dist.get(u)
            if du is None or v == root:
                continue
            dv = dist.get(v)
            if dv is None or du + 1 < dv:
                heap.append((du + 1, v))
        heapq.heapify(heap)
        resettled: Set[int] = set()
        while heap:
            d, v = heapq.heappop(heap)
            known = dist.get(v)
            if known is not None and known <= d:
                continue
            dist[v] = d
            resettled.add(v)
            for w in succ.get(v, ()):
                if w == root:
                    continue
                dw = dist.get(w)
                if dw is None or dw > d + 1:
                    heapq.heappush(heap, (d + 1, w))

        changed = False
        routes = self.routes
        fhop = self.fhop
        dropped = affected - resettled
        for v in dropped:
            fhop.pop(v, None)
            if routes.pop(v, None) is not None:
                changed = True

        # Phase 3 — first-hop repair, bucketed by ascending distance (the
        # recurrence for level d reads only level d-1).  Seeds: every vertex
        # whose distance was re-settled, every vertex that lost or gained an
        # in-edge, and every vertex phase 1 examined (it may have lost the
        # parent that supplied its minimal first hop).
        fbuckets: Dict[int, Set[int]] = {}

        def seed(v: int) -> None:
            dv = dist.get(v)
            if dv is not None and v != root:
                fbuckets.setdefault(dv, set()).add(v)

        for v in resettled:
            seed(v)
        for v in touched_ok:
            seed(v)
        for _u, v in real_added:
            seed(v)
        for _u, v in real_removed:
            seed(v)
        # Successors of dropped vertices lose a potential fhop contributor.
        for v in dropped:
            for w in succ.get(v, ()):
                seed(w)
        while fbuckets:
            d = min(fbuckets)
            for v in fbuckets.pop(d):
                if dist.get(v) != d:
                    continue
                best = None
                for p in pred.get(v, ()):
                    if dist.get(p) == d - 1:
                        contrib = v if p == root else fhop[p]
                        if best is None or contrib < best:
                            best = contrib
                if best is None:
                    # Unreachable after all (defensive; phase 2 settles only
                    # vertices relaxed from a live parent).
                    del dist[v]
                    fhop.pop(v, None)
                    if routes.pop(v, None) is not None:
                        changed = True
                    continue
                entry = (best, d)
                if fhop.get(v) != best:
                    fhop[v] = best
                    routes[v] = entry
                    changed = True
                    for w in succ.get(v, ()):
                        if w != root and dist.get(w) == d + 1:
                            fbuckets.setdefault(d + 1, set()).add(w)
                elif routes.get(v) != entry:
                    routes[v] = entry
                    changed = True
        return changed
