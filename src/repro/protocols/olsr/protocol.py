"""The OLSR CF: assembly of the OLSR ManetProtocol (paper Fig 5).

The composition stacks on an MPR CF instance: OLSR "uses topology
information garnered by MPR and uses the latter's forwarding services to
flood topology information" (section 5.1).  Installing OLSR therefore
(a) ensures an MPR instance is deployed, (b) loads a NetworkDriver for
HELLO/TC messages and a PowerStatus component into the System CF, and
(c) registers TC with MPR's flooding service — exactly the installation
steps the paper walks through.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.core.manet_protocol import ManetProtocol
from repro.events.registry import EventTuple
from repro.events.types import EventOntology
from repro.packetbb.message import MsgType
from repro.protocols.olsr.handlers import TcGenerator, TcHandler, TopologyChangeHandler
from repro.protocols.olsr.routes import RouteCalculator
from repro.protocols.olsr.state import OlsrState

TC_INTERVAL = 5.0         # RFC 3626 default
TC_JITTER = 0.25
TOP_HOLD_MULTIPLIER = 3.0
#: Minimum gap between triggered TCs (rate limit).
TC_TRIGGER_DELAY = 0.25


class OlsrCF(ManetProtocol):
    """OLSR proper, stacked on the MPR CF."""

    protocol_class = "proactive"

    def __init__(
        self,
        ontology: EventOntology,
        tc_interval: float = TC_INTERVAL,
        jitter: float = TC_JITTER,
        name: str = "olsr",
    ) -> None:
        super().__init__(name, ontology)
        self.configurator.update(
            {
                "tc_interval": tc_interval,
                "top_hold_multiplier": TOP_HOLD_MULTIPLIER,
                "trigger_delay": TC_TRIGGER_DELAY,
            }
        )
        self.olsr_state = OlsrState()
        self.set_state(self.olsr_state)
        self.control.insert(RouteCalculator(self))
        self.tc_generator = TcGenerator(self, tc_interval, jitter)
        self.add_source(self.tc_generator)
        self.add_handler(TcHandler(self))
        self.add_handler(TopologyChangeHandler(self))
        self._mpr_name = "mpr"
        self._last_trigger = -1e9
        self.set_event_tuple(
            EventTuple(
                required=["TC_IN", "NHOOD_CHANGE", "MPR_CHANGE"],
                provided=["TC_OUT"],
            )
        )

    # -- installation -----------------------------------------------------------

    def on_install(self, deployment) -> None:
        from repro.protocols.mpr.protocol import MprCF

        mpr = deployment.manager.unit(self._mpr_name)
        if mpr is None:
            mpr = deployment.deploy(MprCF(self.ontology, name=self._mpr_name))
        deployment.system.load_network_driver(
            "tc-driver", [(int(MsgType.TC), "TC_IN", "TC_OUT")]
        )
        mpr.add_flooded_type("TC_IN", "TC_OUT")

    def on_uninstall(self, deployment) -> None:
        mpr = deployment.manager.unit(self._mpr_name)
        if mpr is not None:
            mpr.remove_flooded_type("TC_IN")
        # Withdraw this protocol's kernel routes, like a real daemon on
        # exit; routes installed by co-deployed protocols survive.
        self.sys_state().replace_all([], proto=self.name)
        self.olsr_state.routes = {}

    @property
    def route_calculator(self) -> RouteCalculator:
        """The current route-calculation plug-in (hot-swappable)."""
        return self.control.child("route-calculator")

    # -- MPR access (direct calls) -------------------------------------------------

    def mpr(self):
        """The co-deployed MPR CF (resolved dynamically)."""
        if self.deployment is None:
            raise LookupError(f"{self.name}: not deployed")
        mpr = self.deployment.manager.unit(self._mpr_name)
        if mpr is None:
            raise LookupError(f"{self.name}: no MPR CF named {self._mpr_name!r}")
        return mpr

    def symmetric_neighbours(self) -> List[int]:
        return self.mpr().symmetric_neighbours()

    def two_hop_map(self) -> Dict[int, Set[int]]:
        return self.mpr().two_hop_map()

    def selector_set(self) -> List[int]:
        return self.mpr().selectors()

    # -- timing -----------------------------------------------------------------------

    def tc_interval(self) -> float:
        return self.config("tc_interval")

    def topology_hold_time(self) -> float:
        return self.config("tc_interval") * self.config("top_hold_multiplier")

    # -- reactions ----------------------------------------------------------------------

    def recompute_routes(self) -> int:
        return self.route_calculator.install()

    def maybe_trigger_tc(self) -> None:
        """Pull the next TC forward when the advertised set changed."""
        advertised = set(self.selector_set())
        if advertised == self.olsr_state.last_advertised:
            return
        now = self.deployment.now
        delay = self.config("trigger_delay")
        if now - self._last_trigger < delay:
            return
        self._last_trigger = now
        self.tc_generator.reschedule(delay)

    # -- inspection ------------------------------------------------------------------------

    def routing_table(self) -> Dict[int, tuple]:
        """dest -> (next hop, hop count), as last installed."""
        return dict(self.olsr_state.routes)
