"""OLSR (Optimized Link State Routing) in MANETKit (paper section 5.1).

The OLSR ManetProtocol proper: it consumes the topology information
garnered by the MPR CF, floods Topology Change (TC) messages through MPR's
forwarding service, and computes shortest-path routes into the kernel
table.  Event tuple: provides ``TC_OUT``; requires ``TC_IN``,
``NHOOD_CHANGE`` and ``MPR_CHANGE``.

Variants (both runtime reconfigurations):

* :mod:`repro.protocols.olsr.fisheye` — fish-eye TC scoping for large
  networks [34];
* :mod:`repro.protocols.olsr.power_aware` — energy-aware relay selection
  and residual-power dissemination [33].
"""

from repro.protocols.olsr.state import OlsrState, TopologyEntry
from repro.protocols.olsr.handlers import TcGenerator, TcHandler, TopologyChangeHandler
from repro.protocols.olsr.routes import RouteCalculator
from repro.protocols.olsr.protocol import OlsrCF
from repro.protocols.olsr.fisheye import FishEyeComponent, apply_fisheye, remove_fisheye
from repro.protocols.olsr.power_aware import (
    PowerAwareHelloHandler,
    PowerAwareMprCalculator,
    ResidualPowerComponent,
    apply_power_aware,
    remove_power_aware,
)

__all__ = [
    "OlsrState",
    "TopologyEntry",
    "TcGenerator",
    "TcHandler",
    "TopologyChangeHandler",
    "RouteCalculator",
    "OlsrCF",
    "FishEyeComponent",
    "apply_fisheye",
    "remove_fisheye",
    "PowerAwareHelloHandler",
    "PowerAwareMprCalculator",
    "ResidualPowerComponent",
    "apply_power_aware",
    "remove_power_aware",
]
