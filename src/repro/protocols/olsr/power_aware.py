"""Power-aware OLSR routing (paper section 5.1, citing [33]).

"The power-aware routing variant aims to maximise the lifetime of a route
between selected source-sink pairs [...]  To implement and deploy it, the
MPR ManetProtocol's Hello Event Handler and MPR Calculator components are
replaced by power-aware versions (the new Hello Handler determines link
costs in terms of transmission power; and this is then used by the new MPR
Calculator to determine relay selection).  In addition, a new
'ResidualPower' component is plugged into the OLSR CF to determine the
node's residual battery level and to disseminate this to other nodes in
the network via MPR's flooding service."

It is a variant worth switching *off* again: when no application needs the
long-lifetime QoS emphasis "the variation becomes a hindrance because it
incurs significantly more overhead than standard OLSR routing" — the
ablation benchmark measures exactly that overhead.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, TYPE_CHECKING

from repro.core.manet_protocol import EventHandlerComponent, EventSourceComponent
from repro.events.event import Event
from repro.packetbb.address import Address
from repro.packetbb.message import Message, MsgType
from repro.packetbb.tlv import TLV, TLVBlock
from repro.protocols.common import TlvType, Willingness
from repro.protocols.mpr.calculator import MprCalculator
from repro.protocols.mpr.handlers import MprHelloHandler
from repro.protocols.olsr.routes import RouteCalculator
from repro.protocols.mpr.state import MprState

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.manetkit import ManetKit
    from repro.protocols.mpr.protocol import MprCF
    from repro.protocols.olsr.protocol import OlsrCF

POWER_DISSEMINATION_INTERVAL = 5.0
POWER_HOP_LIMIT = 255


class ResidualPowerComponent(EventSourceComponent):
    """Plugged into the OLSR CF: disseminates and collects residual power.

    Emission goes through MPR's flooding service so that every node learns
    every other node's battery level; reception is handled by the sibling
    :class:`PowerMessageHandler`, which stores readings in this component
    (it provides the ``IResidualPower`` interface the power-aware MPR
    calculator resolves by direct call).
    """

    def __init__(self, interval: float = POWER_DISSEMINATION_INTERVAL) -> None:
        super().__init__("residual-power", interval, jitter=0.2, initial_delay=0.5)
        self.residual_of: Dict[int, float] = {}
        self._seqnum = 0
        self.provide_interface("IResidualPower", "IResidualPower")

    def generate(self) -> None:
        protocol = self.protocol
        level = protocol.deployment.node.battery_level()
        self.residual_of[protocol.local_address] = level
        self._seqnum = (self._seqnum + 1) & 0xFFFF
        message = Message(
            MsgType.POWER,
            originator=Address.from_node_id(protocol.local_address),
            hop_limit=POWER_HOP_LIMIT,
            hop_count=0,
            seqnum=self._seqnum,
            tlv_block=TLVBlock(
                [TLV.of_int(TlvType.RESIDUAL_POWER, int(level * 1000), width=2)]
            ),
        )
        protocol.send_message("POWER_OUT", message)

    # -- IResidualPower ------------------------------------------------------

    def residual(self, node: int) -> float:
        """Last known battery fraction for ``node`` (default: full)."""
        return self.residual_of.get(node, 1.0)

    def record(self, node: int, level: float) -> None:
        self.residual_of[node] = level

    def get_state(self) -> Dict[str, object]:
        return {"residual_of": dict(self.residual_of)}

    def set_state(self, state: Dict[str, object]) -> None:
        value = state.get("residual_of")
        if isinstance(value, dict):
            self.residual_of.update(value)


class PowerMessageHandler(EventHandlerComponent):
    """Stores received residual-power advertisements."""

    handles = ("POWER_IN",)

    def __init__(self, store: ResidualPowerComponent) -> None:
        super().__init__("power-message-handler")
        self.store = store

    def handle(self, event: Event) -> None:
        message: Message = event.payload
        if message.originator is None:
            return
        tlv = message.tlv_block.find(TlvType.RESIDUAL_POWER)
        if tlv is None:
            return
        self.store.record(message.originator.node_id, tlv.as_int() / 1000.0)


class PowerAwareHelloHandler(MprHelloHandler):
    """Replacement Hello handler: derives link costs from residual power.

    Transmission cost toward a low-battery neighbour is modelled as
    ``1 + alpha * (1 - residual)`` — relaying through depleted nodes is
    expensive, so selection avoids them where coverage allows.
    """

    ALPHA = 4.0

    def __init__(self, cf: "MprCF") -> None:
        super().__init__(cf, name="hello-handler")
        self._power_store: Optional[ResidualPowerComponent] = None

    def _store(self) -> Optional[ResidualPowerComponent]:
        if self._power_store is None:
            try:
                self._power_store = self.cf.direct("IResidualPower")
            except LookupError:
                return None
        return self._power_store

    def link_cost(self, message: Message, sender: int) -> float:
        store = self._store()
        residual = store.residual(sender) if store is not None else 1.0
        return 1.0 + self.ALPHA * (1.0 - residual)


class PowerAwareMprCalculator(MprCalculator):
    """Replacement calculator: prefers relays with cheap (high-power) links."""

    # Link costs change without any version bump, so the memoised/scoped
    # ``select`` path would serve stale selections: always recompute.
    memoises = False

    def __init__(self) -> None:
        super().__init__(name="mpr-calculator")

    def compute(self, state: MprState, now: float, self_address: int) -> Set[int]:
        self.computations += 1
        coverage = state.coverage(now, self_address)
        candidates = {
            n: covered
            for n, covered in coverage.items()
            if state.willingness(n) != int(Willingness.NEVER)
        }
        uncovered: Set[int] = set()
        for covered in candidates.values():
            uncovered |= covered
        mprs: Set[int] = set()
        for neighbour in candidates:
            if state.willingness(neighbour) == int(Willingness.ALWAYS):
                mprs.add(neighbour)
                uncovered -= candidates[neighbour]
        while uncovered:
            best = None
            best_key = None
            for neighbour, covered in sorted(candidates.items()):
                if neighbour in mprs:
                    continue
                gain = len(covered & uncovered)
                if gain == 0:
                    continue
                cost = state.links[neighbour].cost if neighbour in state.links else 1.0
                key = (
                    state.willingness(neighbour),
                    -cost,           # cheap (high residual power) first
                    gain,
                    -neighbour,
                )
                if best_key is None or key > best_key:
                    best, best_key = neighbour, key
            if best is None:
                break
            mprs.add(best)
            uncovered -= candidates[best]
        return mprs


class PowerAwareRouteCalculator(RouteCalculator):
    """Replacement route calculator: minimum-energy-cost paths.

    The [33] objective: "find and maintain the route between a pair that
    has the least energy consumption of all possible routes".  Edges are
    weighted by the *relaying* node's residual power — traversing a
    depleted relay is expensive — and Dijkstra replaces the hop-count BFS.
    The destination's own level does not weight the final edge (delivering
    to a low-battery node is the point, relaying through one is the cost).
    """

    # Energy weights sit outside every version fingerprint, so the
    # incremental SPT (unit hop counts, delta-driven) cannot serve this
    # calculator: run the legacy full recomputation each install.
    incremental = False

    ALPHA = 4.0

    def __init__(self, cf: "OlsrCF") -> None:
        super().__init__(cf)
        self._power_store: Optional[ResidualPowerComponent] = None

    def _cache_token(self) -> None:
        # Residual power changes without any neighbourhood/topology
        # version bump, so cached routes could go stale: never cache.
        return None

    def _residual(self, node: int) -> float:
        if self._power_store is None:
            # The store is a sibling plug-in of this very CF, so search
            # locally first; direct() deliberately excludes the own unit.
            self._power_store = self.cf.find_local_interface("IResidualPower")
            if self._power_store is None:
                try:
                    self._power_store = self.cf.direct("IResidualPower")
                except LookupError:
                    return 1.0
        return self._power_store.residual(node)

    def _edge_weight(self, transmitter: int, local: int) -> float:
        """Cost of one transmission hop, charged to the transmitting node.

        The local node's own battery is the same on every candidate path,
        so only *relay* transmissions differentiate paths.
        """
        if transmitter == local:
            return 1.0
        return 1.0 + self.ALPHA * (1.0 - self._residual(transmitter))

    def compute(self):
        import heapq

        self.computations += 1
        cf = self.cf
        local = cf.local_address
        graph = self.build_graph()
        # Dijkstra keyed by energy cost; hop count ridden along for the
        # kernel metric; first_hop for the forwarding entry.
        best = {local: (0.0, 0, None)}
        heap = [(0.0, 0, local, None)]
        while heap:
            cost, hops, node, first_hop = heapq.heappop(heap)
            known = best.get(node)
            if known is not None and (cost, hops) > (known[0], known[1]):
                continue
            weight = self._edge_weight(node, local)
            for successor in sorted(graph.get(node, ())):
                next_first = successor if node == local else first_hop
                candidate = (cost + weight, hops + 1)
                existing = best.get(successor)
                if existing is None or candidate < (existing[0], existing[1]):
                    best[successor] = (candidate[0], candidate[1], next_first)
                    heapq.heappush(
                        heap, (candidate[0], candidate[1], successor, next_first)
                    )
        return {
            node: (first_hop, hops)
            for node, (_cost, hops, first_hop) in best.items()
            if node != local and first_hop is not None
        }


def apply_power_aware(deployment: "ManetKit") -> ResidualPowerComponent:
    """Reconfigure a running OLSR/MPR deployment to power-aware routing.

    Enacts the exact steps of section 5.1 through the reconfiguration
    manager: two component replacements inside the MPR CF, one component
    (plus its handler) plugged into the OLSR CF, a POWER NetworkDriver in
    the System CF, and POWER registered with MPR flooding.
    """
    olsr = deployment.protocol("olsr")
    mpr = deployment.protocol("mpr")
    reconfig = deployment.reconfig

    power_store = ResidualPowerComponent()
    reconfig.insert_component("olsr", power_store)
    reconfig.insert_component("olsr", PowerMessageHandler(power_store))
    deployment.system.load_network_driver(
        "power-driver", [(int(MsgType.POWER), "POWER_IN", "POWER_OUT")]
    )
    mpr.add_flooded_type("POWER_IN", "POWER_OUT")
    olsr.set_event_tuple(
        olsr.event_tuple.with_required("POWER_IN").with_provided("POWER_OUT")
    )
    reconfig.replace_component("mpr", "hello-handler", PowerAwareHelloHandler(mpr))
    reconfig.replace_component("mpr", "mpr-calculator", PowerAwareMprCalculator())
    reconfig.replace_component(
        "olsr", "route-calculator", PowerAwareRouteCalculator(olsr)
    )
    return power_store


def remove_power_aware(deployment: "ManetKit") -> None:
    """Back out the variant when its QoS emphasis is no longer needed."""
    from repro.events.registry import EventTuple
    from repro.protocols.mpr.handlers import MprHelloHandler as StandardHandler

    olsr = deployment.protocol("olsr")
    mpr = deployment.protocol("mpr")
    reconfig = deployment.reconfig
    reconfig.replace_component("olsr", "route-calculator", RouteCalculator(olsr))
    reconfig.replace_component("mpr", "mpr-calculator", MprCalculator())
    reconfig.replace_component(
        "mpr", "hello-handler", StandardHandler(mpr, name="hello-handler")
    )
    mpr.remove_flooded_type("POWER_IN")
    reconfig.remove_component("olsr", "power-message-handler")
    reconfig.remove_component("olsr", "residual-power")
    required = [r for r in olsr.event_tuple.required if r.name != "POWER_IN"]
    provided = [p for p in olsr.event_tuple.provided if p != "POWER_OUT"]
    olsr.set_event_tuple(EventTuple(required, provided))
    deployment.system.unload_network_driver("power-driver")
