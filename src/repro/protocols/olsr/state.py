"""The OLSR S element: topology set, ANSN bookkeeping, route mirror."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.core.manet_protocol import StateComponent
from repro.protocols.common import seq_increment, seq_newer


@dataclass
class TopologyEntry:
    """One learned topology tuple: ``destination`` is reachable via
    ``last_hop`` (the TC originator)."""

    last_hop: int
    destination: int
    ansn: int
    expiry: float


class OlsrState(StateComponent):
    """S element of the OLSR CF."""

    #: Edge-delta batches retained for incremental route repair.  Consumers
    #: further behind than this (or cut off by a state transfer) rebuild
    #: from scratch instead.
    JOURNAL_LIMIT = 256

    def __init__(self) -> None:
        super().__init__("olsr-state")
        #: (last_hop, destination) -> TopologyEntry
        self.topology: Dict[Tuple[int, int], TopologyEntry] = {}
        #: freshest ANSN seen per TC originator, as (ansn, expiry).  The
        #: expiry mirrors RFC 3626's hold-time semantics: an expired record
        #: imposes no freshness constraint, so one corrupted TC carrying a
        #: wrapped-ahead ANSN cannot poison an originator forever.
        self.ansn_of: Dict[int, Tuple[int, float]] = {}
        #: freshest message seqnum per TC originator (duplicate filtering),
        #: as (seqnum, expiry) — the duplicate set ages out the same way.
        self.msg_seq_of: Dict[int, Tuple[int, float]] = {}
        #: our Advertised Neighbour Sequence Number
        self.ansn = 0
        #: the advertised (MPR selector) set as of the last TC we sent
        self.last_advertised: Set[int] = set()
        #: mirror of the routes we last installed: dest -> (next_hop, hops)
        self.routes: Dict[int, Tuple[int, int]] = {}
        #: per-originator destination index over ``topology``, kept in lock
        #: step with it — record/drop touch only one originator's edges
        #: instead of scanning the whole set.
        self._by_origin: Dict[int, Set[int]] = {}
        #: earliest expiry across the topology set; ``purge_topology`` is a
        #: no-op until the clock passes it.
        self._min_expiry: float = float("inf")
        #: bumped whenever the topology *edge set* changes.  Refreshes that
        #: only extend expiries keep the version, so route computations
        #: (which depend on edges alone) can be cached against it.
        self.topology_version = 0
        #: journal of edge deltas, one entry per version bump:
        #: (version after applying, added edges, removed edges).
        self._journal: Deque[
            Tuple[int, Tuple[Tuple[int, int], ...], Tuple[Tuple[int, int], ...]]
        ] = deque()
        #: oldest version a journal consumer can still catch up from.
        self._journal_floor = 0
        self.provide_interface("IOLSRState", "IOLSRState")

    # -- topology delta journal --------------------------------------------

    def _log_topology_delta(self, added, removed) -> None:
        """Bump the version and journal the edge delta that caused it."""
        self.topology_version += 1
        self._journal.append((self.topology_version, tuple(added), tuple(removed)))
        if len(self._journal) > self.JOURNAL_LIMIT:
            self._journal.popleft()
            self._journal_floor = self._journal[0][0] - 1

    def _invalidate_journal(self) -> None:
        """Structural invalidation (state transfer): force consumers to rebuild."""
        self.topology_version += 1
        self._journal.clear()
        self._journal_floor = self.topology_version

    def topology_deltas_since(
        self, version: int
    ) -> Optional[List[Tuple[Tuple[Tuple[int, int], ...], Tuple[Tuple[int, int], ...]]]]:
        """Edge deltas taking ``version`` to the current version.

        Returns ``[]`` when already current, ``None`` when the consumer is
        too far behind (journal overflow) or the journal was invalidated by
        a state transfer — the caller must fall back to a full rebuild.
        """
        if version == self.topology_version:
            return []
        if version < self._journal_floor or version > self.topology_version:
            return None
        return [
            (added, removed)
            for entry_version, added, removed in self._journal
            if entry_version > version
        ]

    # -- ANSN --------------------------------------------------------------

    def bump_ansn(self) -> int:
        self.ansn = seq_increment(self.ansn)
        return self.ansn

    def fresher_ansn(self, originator: int, ansn: int, now: float = 0.0) -> bool:
        """Whether ``ansn`` is at least as fresh as the recorded one."""
        record = self.ansn_of.get(originator)
        if record is None or record[1] <= now:
            return True
        return not seq_newer(record[0], ansn)

    # -- duplicate set -----------------------------------------------------------

    def fresh_msg_seq(self, originator: int, now: float) -> "int | None":
        """The recorded message seqnum, or ``None`` if absent/expired."""
        record = self.msg_seq_of.get(originator)
        if record is None or record[1] <= now:
            return None
        return record[0]

    def note_msg_seq(self, originator: int, seqnum: int, expiry: float) -> None:
        self.msg_seq_of[originator] = (seqnum, expiry)

    # -- topology set -----------------------------------------------------------

    def record_topology(
        self, last_hop: int, destinations: List[int], ansn: int, expiry: float
    ) -> None:
        """Install the advertised set of one TC, superseding older ANSNs."""
        self.ansn_of[last_hop] = (ansn, expiry)
        topology = self.topology
        dests = self._by_origin.get(last_hop)
        if dests is None:
            dests = self._by_origin[last_hop] = set()
        stale = {
            d for d in dests if seq_newer(ansn, topology[(last_hop, d)].ansn)
        }
        advertised = set(destinations)
        # Net edge delta: stale-but-readvertised destinations cancel out.
        added_net = advertised - dests
        removed_net = stale - advertised
        if added_net or removed_net:
            self._log_topology_delta(
                [(last_hop, d) for d in added_net],
                [(last_hop, d) for d in removed_net],
            )
        for destination in stale:
            del topology[(last_hop, destination)]
        dests -= stale
        for destination in destinations:
            topology[(last_hop, destination)] = TopologyEntry(
                last_hop, destination, ansn, expiry
            )
            dests.add(destination)
        if not dests:
            del self._by_origin[last_hop]
        elif expiry < self._min_expiry:
            self._min_expiry = expiry

    def purge_topology(self, now: float) -> int:
        if now < self._min_expiry:
            return 0
        stale = [key for key, entry in self.topology.items() if entry.expiry <= now]
        for key in stale:
            del self.topology[key]
            dests = self._by_origin.get(key[0])
            if dests is not None:
                dests.discard(key[1])
                if not dests:
                    del self._by_origin[key[0]]
        if stale:
            self._log_topology_delta((), stale)
        self._min_expiry = min(
            (entry.expiry for entry in self.topology.values()),
            default=float("inf"),
        )
        return len(stale)

    def drop_originator(self, originator: int) -> None:
        dests = self._by_origin.pop(originator, None)
        if not dests:
            return
        for destination in dests:
            del self.topology[(originator, destination)]
        self._log_topology_delta((), [(originator, d) for d in dests])

    def topology_edges(self) -> List[Tuple[int, int]]:
        return sorted(self.topology.keys())

    # -- state transfer -------------------------------------------------------------

    def get_state(self) -> Dict[str, object]:
        return {
            "topology": {
                key: (e.ansn, e.expiry) for key, e in self.topology.items()
            },
            "ansn_of": dict(self.ansn_of),
            "msg_seq_of": dict(self.msg_seq_of),
            "ansn": self.ansn,
            "last_advertised": set(self.last_advertised),
            "routes": dict(self.routes),
        }

    def set_state(self, state: Dict[str, object]) -> None:
        topology = state.get("topology")
        if isinstance(topology, dict):
            for (last_hop, destination), (ansn, expiry) in topology.items():
                self.topology[(last_hop, destination)] = TopologyEntry(
                    last_hop, destination, ansn, expiry
                )
                self._by_origin.setdefault(last_hop, set()).add(destination)
                if expiry < self._min_expiry:
                    self._min_expiry = expiry
        # A transfer can rewrite any input of route computation (topology
        # edges, the route mirror), so downstream incremental consumers must
        # rebuild rather than trust their replay position.
        self._invalidate_journal()
        for attr in ("ansn_of", "msg_seq_of", "routes"):
            value = state.get(attr)
            if isinstance(value, dict):
                getattr(self, attr).update(value)
        if "ansn" in state:
            self.ansn = state["ansn"]  # type: ignore[assignment]
        advertised = state.get("last_advertised")
        if isinstance(advertised, set):
            self.last_advertised = set(advertised)
