"""OLSR event sources and handlers: TC emission, TC processing, triggers.

TC wire format (PacketBB): originator + message seqnum + hop limit, an
``ANSN`` message TLV, and one address block carrying the advertised
neighbour set (our MPR selectors).  TCs are flooded network-wide through
the MPR CF's forwarding service.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core.manet_protocol import EventHandlerComponent, EventSourceComponent
from repro.events.event import Event
from repro.packetbb.address import Address, AddressBlock
from repro.packetbb.message import Message, MsgType
from repro.packetbb.tlv import TLV, TLVBlock
from repro.protocols.common import TlvType, seq_newer

if TYPE_CHECKING:  # pragma: no cover
    from repro.protocols.olsr.protocol import OlsrCF

TC_HOP_LIMIT = 255


class TcGenerator(EventSourceComponent):
    """Emits periodic Topology Change messages.

    A TC advertises the node's MPR selector set.  Like Unik-olsrd, the
    generator also supports *triggered* TCs: when the advertised set
    changes, the next emission is pulled forward (rate-limited), which is
    what gives OLSR its ~1 s route-establishment behaviour on the paper's
    testbed rather than a full TC interval.
    """

    def __init__(self, cf: "OlsrCF", interval: float, jitter: float,
                 initial_delay: Optional[float] = None) -> None:
        super().__init__("tc-generator", interval, jitter, initial_delay)
        self.cf = cf
        self._seqnum = 0
        self.empty_tc_rounds = 0

    def generate(self) -> None:
        cf = self.cf
        state = cf.olsr_state
        now = cf.deployment.now
        state.purge_topology(now)
        advertised = set(cf.selector_set())
        if advertised != state.last_advertised:
            state.bump_ansn()
            state.last_advertised = set(advertised)
        if not advertised:
            # RFC 3626: keep advertising an empty set for a grace period
            # so remote topology entries age out, then go quiet.
            self.empty_tc_rounds += 1
            if self.empty_tc_rounds > 3:
                return
        else:
            self.empty_tc_rounds = 0
        self._seqnum = (self._seqnum + 1) & 0xFFFF
        message = Message(
            MsgType.TC,
            originator=Address.from_node_id(cf.local_address),
            hop_limit=TC_HOP_LIMIT,
            hop_count=0,
            seqnum=self._seqnum,
            tlv_block=TLVBlock([TLV.of_int(TlvType.ANSN, state.ansn, width=2)]),
            address_blocks=(
                [AddressBlock([Address.from_node_id(a) for a in sorted(advertised)])]
                if advertised
                else []
            ),
        )
        cf.send_message("TC_OUT", message)


class TcHandler(EventHandlerComponent):
    """Processes received TCs into the topology set."""

    handles = ("TC_IN",)

    def __init__(self, cf: "OlsrCF") -> None:
        super().__init__("tc-handler")
        self.cf = cf
        self.stale_discarded = 0

    def handle(self, event: Event) -> None:
        message: Message = event.payload
        cf = self.cf
        if message.originator is None or message.seqnum is None:
            return
        originator = message.originator.node_id
        if originator == cf.local_address:
            return
        state = cf.olsr_state
        now = event.timestamp
        hold_until = now + cf.topology_hold_time()
        # Per-originator duplicate / reordering filter on message seqnums.
        # Records age out after the hold time (RFC 3626 duplicate-set
        # behaviour), so a corrupted seqnum far ahead of the genuine
        # sequence only mutes an originator temporarily.
        previous_seq = state.fresh_msg_seq(originator, now)
        if previous_seq is not None and not seq_newer(message.seqnum, previous_seq):
            self.stale_discarded += 1
            return
        state.note_msg_seq(originator, message.seqnum, hold_until)
        ansn_tlv = message.tlv_block.find(TlvType.ANSN)
        if ansn_tlv is None:
            return
        ansn = ansn_tlv.as_int()
        if not state.fresher_ansn(originator, ansn, now):
            self.stale_discarded += 1
            return
        destinations = [a.node_id for a in message.all_addresses()]
        state.record_topology(
            originator,
            destinations,
            ansn,
            event.timestamp + cf.topology_hold_time(),
        )
        cf.recompute_routes()


class TopologyChangeHandler(EventHandlerComponent):
    """Reacts to neighbourhood / relay-selection changes from the MPR CF.

    Any change to the local neighbourhood both invalidates routes (so
    routes are recomputed) and potentially changes the advertised set (so
    a triggered TC may be due).
    """

    handles = ("NHOOD_CHANGE", "MPR_CHANGE")

    def __init__(self, cf: "OlsrCF") -> None:
        super().__init__("topology-change-handler")
        self.cf = cf

    def handle(self, event: Event) -> None:
        cf = self.cf
        if event.etype.name == "NHOOD_CHANGE":
            lost = event.payload.get("lost", []) if event.payload else []
            for neighbour in lost:
                # A lost symmetric neighbour stops being a valid last hop.
                cf.olsr_state.drop_originator(neighbour)
        cf.recompute_routes()
        cf.maybe_trigger_tc()
