"""AODV message formats (RFC 3561 semantics in PacketBB clothing)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.packetbb.address import Address, AddressBlock
from repro.packetbb.message import Message, MsgType
from repro.packetbb.tlv import TLV, TLVBlock
from repro.protocols.common import TlvType


@dataclass
class RreqInfo:
    originator: int
    orig_seqnum: int
    rreq_id: int
    destination: int
    dest_seqnum: Optional[int]
    hop_count: int
    hop_limit: Optional[int]


@dataclass
class RrepInfo:
    destination: int      # the node that answers (route target)
    dest_seqnum: int
    originator: int       # the node that asked
    hop_count: int
    lifetime: float


def build_rreq(
    originator: int,
    orig_seqnum: int,
    rreq_id: int,
    destination: int,
    dest_seqnum: Optional[int],
    hop_count: int = 0,
    hop_limit: int = 10,
) -> Message:
    tlvs = TLVBlock(
        [
            TLV.of_int(TlvType.RREQ_ID, rreq_id, width=2),
            TLV.of_int(TlvType.ORIG_SEQNUM, orig_seqnum, width=2),
            TLV.of_int(TlvType.HOPCOUNT, hop_count, width=1),
        ]
    )
    if dest_seqnum is not None:
        tlvs.add(TLV.of_int(TlvType.DEST_SEQNUM, dest_seqnum, width=2))
    return Message(
        MsgType.AODV_RREQ,
        originator=Address.from_node_id(originator),
        hop_limit=hop_limit,
        hop_count=hop_count,
        seqnum=rreq_id,
        tlv_block=tlvs,
        address_blocks=[AddressBlock([Address.from_node_id(destination)])],
    )


def parse_rreq(message: Message) -> Optional[RreqInfo]:
    if message.msg_type != int(MsgType.AODV_RREQ):
        return None
    if message.originator is None or not message.address_blocks:
        return None
    rreq_id = message.tlv_block.find(TlvType.RREQ_ID)
    orig_seq = message.tlv_block.find(TlvType.ORIG_SEQNUM)
    hop_count = message.tlv_block.find(TlvType.HOPCOUNT)
    dest_seq = message.tlv_block.find(TlvType.DEST_SEQNUM)
    if rreq_id is None or orig_seq is None or hop_count is None:
        return None
    return RreqInfo(
        originator=message.originator.node_id,
        orig_seqnum=orig_seq.as_int(),
        rreq_id=rreq_id.as_int(),
        destination=message.address_blocks[0].addresses[0].node_id,
        dest_seqnum=dest_seq.as_int() if dest_seq else None,
        hop_count=hop_count.as_int(),
        hop_limit=message.hop_limit,
    )


def build_rrep(
    destination: int,
    dest_seqnum: int,
    originator: int,
    hop_count: int,
    lifetime: float,
) -> Message:
    return Message(
        MsgType.AODV_RREP,
        originator=Address.from_node_id(destination),
        hop_limit=32,
        hop_count=0,
        tlv_block=TLVBlock(
            [
                TLV.of_int(TlvType.DEST_SEQNUM, dest_seqnum, width=2),
                TLV.of_int(TlvType.HOPCOUNT, hop_count, width=1),
                TLV.of_int(TlvType.LIFETIME, int(lifetime * 1000), width=4),
            ]
        ),
        address_blocks=[AddressBlock([Address.from_node_id(originator)])],
    )


def parse_rrep(message: Message) -> Optional[RrepInfo]:
    if message.msg_type != int(MsgType.AODV_RREP):
        return None
    if message.originator is None or not message.address_blocks:
        return None
    dest_seq = message.tlv_block.find(TlvType.DEST_SEQNUM)
    hop_count = message.tlv_block.find(TlvType.HOPCOUNT)
    lifetime = message.tlv_block.find(TlvType.LIFETIME)
    if dest_seq is None or hop_count is None:
        return None
    return RrepInfo(
        destination=message.originator.node_id,
        dest_seqnum=dest_seq.as_int(),
        originator=message.address_blocks[0].addresses[0].node_id,
        hop_count=hop_count.as_int(),
        lifetime=(lifetime.as_int() / 1000.0) if lifetime else 5.0,
    )


def build_aodv_rerr(
    unreachable: List[Tuple[int, Optional[int]]], source: int
) -> Message:
    block = AddressBlock([Address.from_node_id(a) for a, _seq in unreachable])
    for index, (_addr, seqnum) in enumerate(unreachable):
        if seqnum is not None:
            block.tlv_block.add(
                TLV.of_int(TlvType.DEST_SEQNUM, seqnum, width=2,
                           index_start=index, index_stop=index)
            )
    return Message(
        MsgType.AODV_RERR,
        originator=Address.from_node_id(source),
        hop_limit=5,
        hop_count=0,
        address_blocks=[block],
    )


def parse_aodv_rerr(message: Message) -> List[Tuple[int, Optional[int]]]:
    if message.msg_type != int(MsgType.AODV_RERR) or not message.address_blocks:
        return []
    block = message.address_blocks[0]
    out: List[Tuple[int, Optional[int]]] = []
    for index, address in enumerate(block.addresses):
        tlv = block.tlv_block.find_for_index(TlvType.DEST_SEQNUM, index)
        out.append((address.node_id, tlv.as_int() if tlv else None))
    return out
