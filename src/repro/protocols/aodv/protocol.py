"""The AODV CF: state, handlers and assembly.

AODV reuses the same generic substrate as DYMO — the Neighbour Detection
CF, the NetLink plug-in, the routing-table template, timers — which is the
code-reuse story of Table 3 extended to a third protocol.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.manet_protocol import (
    EventHandlerComponent,
    ManetProtocol,
    StateComponent,
)
from repro.events.event import Event
from repro.events.registry import EventTuple
from repro.events.types import EventOntology
from repro.packetbb.message import Message, MsgType
from repro.protocols.common import seq_increment, seq_newer
from repro.protocols.aodv.messages import (
    build_aodv_rerr,
    build_rrep,
    build_rreq,
    parse_aodv_rerr,
    parse_rrep,
    parse_rreq,
)
from repro.protocols.dymo.state import PendingDiscovery
from repro.utils.routing_table import Route, RoutingTable

ACTIVE_ROUTE_TIMEOUT = 5.0
RREQ_WAIT = 1.0
RREQ_TRIES = 2
PIGGYBACK_LIMIT = 5


class AodvState(StateComponent):
    """S element: sequence numbers, RREQ ids, route table, pending."""

    def __init__(self) -> None:
        super().__init__("aodv-state")
        self.own_seqnum = 1
        self.rreq_id = 0
        self.table = RoutingTable()
        self.pending: Dict[int, PendingDiscovery] = {}
        #: (originator, rreq_id) -> expiry, for RREQ duplicate suppression
        self.rreq_seen: Dict[Tuple[int, int], float] = {}
        self.provide_interface("IAODVState", "IAODVState")

    def next_seqnum(self) -> int:
        self.own_seqnum = seq_increment(self.own_seqnum) or 1
        return self.own_seqnum

    def next_rreq_id(self) -> int:
        self.rreq_id = seq_increment(self.rreq_id)
        return self.rreq_id

    def seen(self, originator: int, rreq_id: int) -> bool:
        return (originator, rreq_id) in self.rreq_seen

    def note(self, originator: int, rreq_id: int, now: float) -> None:
        self.rreq_seen[(originator, rreq_id)] = now + 10.0

    def get_state(self) -> Dict[str, object]:
        return {
            "own_seqnum": self.own_seqnum,
            "rreq_id": self.rreq_id,
            "routes": [
                (r.destination, r.next_hop, r.hop_count, r.seqnum, r.expiry, r.valid)
                for r in self.table.snapshot()
            ],
        }

    def set_state(self, state: Dict[str, object]) -> None:
        self.own_seqnum = state.get("own_seqnum", self.own_seqnum)
        self.rreq_id = state.get("rreq_id", self.rreq_id)
        routes = state.get("routes")
        if isinstance(routes, list):
            for destination, next_hop, hops, seqnum, expiry, valid in routes:
                self.table.add(Route(destination, next_hop, hops, seqnum, expiry, valid))


class RreqHandler(EventHandlerComponent):
    handles = ("AODV_RREQ_IN",)

    def __init__(self, cf: "AodvCF") -> None:
        super().__init__("aodv-rreq-handler")
        self.cf = cf

    def handle(self, event: Event) -> None:
        info = parse_rreq(event.payload)
        cf = self.cf
        if info is None or event.source is None:
            return
        if info.originator == cf.local_address:
            return
        state = cf.aodv_state
        # Reverse route to the originator through the previous hop.
        cf.update_route(
            info.originator, event.source, info.hop_count + 1, info.orig_seqnum
        )
        if state.seen(info.originator, info.rreq_id):
            return
        state.note(info.originator, info.rreq_id, event.timestamp)
        if info.destination == cf.local_address:
            # We are the destination: freshen our seqnum and reply.
            if info.dest_seqnum is not None and seq_newer(
                info.dest_seqnum, state.own_seqnum
            ):
                state.own_seqnum = info.dest_seqnum
            state.next_seqnum()
            rrep = build_rrep(
                cf.local_address,
                state.own_seqnum,
                info.originator,
                hop_count=0,
                lifetime=cf.route_timeout(),
            )
            cf.send_message("AODV_RREP_OUT", rrep, link_dst=event.source)
            return
        message: Message = event.payload
        if message.forwardable:
            relayed = build_rreq(
                info.originator,
                info.orig_seqnum,
                info.rreq_id,
                info.destination,
                info.dest_seqnum,
                hop_count=info.hop_count + 1,
                hop_limit=(message.hop_limit or 1) - 1,
            )
            cf.send_message("AODV_RREQ_OUT", relayed)


class RrepHandler(EventHandlerComponent):
    handles = ("AODV_RREP_IN",)

    def __init__(self, cf: "AodvCF") -> None:
        super().__init__("aodv-rrep-handler")
        self.cf = cf

    def handle(self, event: Event) -> None:
        info = parse_rrep(event.payload)
        cf = self.cf
        if info is None or event.source is None:
            return
        if info.destination == cf.local_address:
            return
        # Forward route to the destination through the previous hop.
        cf.update_route(
            info.destination, event.source, info.hop_count + 1, info.dest_seqnum
        )
        if info.originator == cf.local_address:
            return  # discovery complete
        route = cf.aodv_state.table.lookup(info.originator)
        if route is None:
            return
        forwarded = build_rrep(
            info.destination,
            info.dest_seqnum,
            info.originator,
            hop_count=info.hop_count + 1,
            lifetime=info.lifetime,
        )
        cf.send_message("AODV_RREP_OUT", forwarded, link_dst=route.next_hop)


class AodvKernelHandler(EventHandlerComponent):
    handles = ("NO_ROUTE", "ROUTE_UPDATE", "SEND_ROUTE_ERR")

    def __init__(self, cf: "AodvCF") -> None:
        super().__init__("aodv-kernel-handler")
        self.cf = cf

    def handle(self, event: Event) -> None:
        destination = event.payload["destination"]
        if event.etype.name == "NO_ROUTE":
            self.cf.start_discovery(destination)
        elif event.etype.name == "ROUTE_UPDATE":
            self.cf.refresh_route(destination)
        else:
            self.cf.originate_rerr([destination])


class AodvRerrHandler(EventHandlerComponent):
    handles = ("AODV_RERR_IN", "NHOOD_CHANGE", "LINK_BREAK")

    def __init__(self, cf: "AodvCF") -> None:
        super().__init__("aodv-rerr-handler")
        self.cf = cf

    def handle(self, event: Event) -> None:
        cf = self.cf
        if event.etype.name == "AODV_RERR_IN":
            broken = []
            for destination, _seq in parse_aodv_rerr(event.payload):
                route = cf.aodv_state.table.get(destination)
                if route is not None and route.valid and route.next_hop == event.source:
                    cf.drop_route(destination)
                    broken.append(destination)
            if broken:
                cf.originate_rerr(broken)
            return
        if event.etype.name == "LINK_BREAK":
            lost = [event.payload["neighbour"]]
        else:
            lost = event.payload.get("lost", [])
        broken = []
        for neighbour in lost:
            for route in cf.aodv_state.table.routes_via(neighbour):
                cf.drop_route(route.destination)
                broken.append(route.destination)
        if broken:
            cf.originate_rerr(broken)


class AodvCF(ManetProtocol):
    """AODV: hop-by-hop reactive routing."""

    protocol_class = "reactive"

    def __init__(
        self,
        ontology: EventOntology,
        route_timeout: float = ACTIVE_ROUTE_TIMEOUT,
        name: str = "aodv",
    ) -> None:
        super().__init__(name, ontology)
        self.configurator.update(
            {
                "route_timeout": route_timeout,
                "rreq_wait": RREQ_WAIT,
                "rreq_tries": RREQ_TRIES,
                "piggyback_routes": False,
                # RREQ TTL: must cover the network diameter or discovery
                # dies short of far destinations (same knob as DYMO's).
                "net_diameter": 10,
            }
        )
        self.aodv_state = AodvState()
        self.set_state(self.aodv_state)
        self.add_handler(RreqHandler(self))
        self.add_handler(RrepHandler(self))
        self.add_handler(AodvKernelHandler(self))
        self.add_handler(AodvRerrHandler(self))
        self.set_event_tuple(
            EventTuple(
                required=[
                    "AODV_RREQ_IN",
                    "AODV_RREP_IN",
                    "AODV_RERR_IN",
                    "NO_ROUTE",
                    "ROUTE_UPDATE",
                    "SEND_ROUTE_ERR",
                    "NHOOD_CHANGE",
                    "LINK_BREAK",
                ],
                provided=[
                    "AODV_RREQ_OUT",
                    "AODV_RREP_OUT",
                    "AODV_RERR_OUT",
                    "ROUTE_FOUND",
                ],
            )
        )

    # -- installation -----------------------------------------------------------

    def on_install(self, deployment) -> None:
        deployment.system.load_netlink()
        deployment.system.load_network_driver(
            "aodv-driver",
            [
                (int(MsgType.AODV_RREQ), "AODV_RREQ_IN", "AODV_RREQ_OUT"),
                (int(MsgType.AODV_RREP), "AODV_RREP_IN", "AODV_RREP_OUT"),
                (int(MsgType.AODV_RERR), "AODV_RERR_IN", "AODV_RERR_OUT"),
            ],
        )
        self.aodv_state.table._clock = lambda: deployment.now
        if deployment.manager.unit("neighbour-detection") is None:
            from repro.core.neighbour_detection import NeighbourDetectionCF

            deployment.deploy(NeighbourDetectionCF(self.ontology))
        if self.config("piggyback_routes"):
            self.enable_route_piggyback()

    def on_uninstall(self, deployment) -> None:
        # Same teardown discipline as DYMO: disarm discovery retry timers
        # (they close over this protocol and must not fire after the
        # switch) and withdraw this protocol's kernel routes.
        for pending in self.aodv_state.pending.values():
            pending.cancel()
        self.aodv_state.pending.clear()
        self.sys_state().replace_all([], proto=self.name)

    def enable_route_piggyback(self) -> None:
        """Advertise routes on the Neighbour Detection CF's HELLOs.

        The section 4.3 use case: neighbours learn fresh routes without any
        extra transmissions (gratuitous RREPs ride on HELLO packets).
        """
        nd = self.deployment.manager.unit("neighbour-detection")
        if nd is None:
            return
        self.configurator.set("piggyback_routes", True)
        nd.add_piggyback_supplier(self._piggyback_routes)

    def _piggyback_routes(self) -> List[Message]:
        routes = [r for r in self.aodv_state.table if r.valid][:PIGGYBACK_LIMIT]
        return [
            build_rrep(
                route.destination,
                route.seqnum or 0,
                self.local_address,
                hop_count=route.hop_count,
                lifetime=self.route_timeout(),
            )
            for route in routes
        ]

    # -- route table ---------------------------------------------------------------

    def route_timeout(self) -> float:
        return self.config("route_timeout")

    def update_route(
        self, destination: int, next_hop: int, hop_count: int, seqnum: Optional[int]
    ) -> bool:
        """Install if fresher (newer seqnum, or equal and fewer hops)."""
        state = self.aodv_state
        existing = state.table.get(destination)
        if existing is not None and existing.valid and seqnum is not None:
            current = existing.seqnum or 0
            if seq_newer(current, seqnum):
                return False
            if current == seqnum and existing.hop_count <= hop_count:
                return False
        timeout = self.route_timeout()
        state.table.add(
            Route(
                destination,
                next_hop,
                hop_count,
                seqnum,
                expiry=self.deployment.now + timeout,
            )
        )
        self.sys_state().add_route(
            destination, next_hop, hop_count, lifetime=timeout, proto=self.name
        )
        pending = state.pending.pop(destination, None)
        if pending is not None:
            pending.cancel()
        self.emit("ROUTE_FOUND", payload={"destination": destination})
        return True

    def refresh_route(self, destination: int) -> None:
        route = self.aodv_state.table.lookup(destination)
        if route is None:
            return
        route.expiry = self.deployment.now + self.route_timeout()
        self.sys_state().refresh_route(destination, self.route_timeout())

    def drop_route(self, destination: int) -> None:
        self.aodv_state.table.invalidate(destination)
        self.sys_state().del_route(destination)

    # -- discovery ---------------------------------------------------------------------

    def start_discovery(self, destination: int) -> None:
        state = self.aodv_state
        if destination in state.pending:
            return
        pending = PendingDiscovery(destination, tries=1, wait=self.config("rreq_wait"))
        state.pending[destination] = pending
        self._send_rreq(destination)
        pending.timer = self.deployment.timers.one_shot(
            pending.wait, lambda: self._retry(destination)
        )

    def _send_rreq(self, destination: int) -> None:
        state = self.aodv_state
        known = state.table.get(destination)
        rreq = build_rreq(
            self.local_address,
            state.next_seqnum(),
            state.next_rreq_id(),
            destination,
            known.seqnum if known is not None else None,
            hop_limit=self.config("net_diameter"),
        )
        self.send_message("AODV_RREQ_OUT", rreq)

    def _retry(self, destination: int) -> None:
        with self.lock:
            state = self.aodv_state
            pending = state.pending.get(destination)
            if pending is None:
                return
            if state.table.lookup(destination) is not None:
                pending.cancel()
                del state.pending[destination]
                return
            if pending.tries >= self.config("rreq_tries"):
                pending.cancel()
                del state.pending[destination]
                try:
                    self.direct("INetlink").drop_buffered(destination)
                except LookupError:
                    pass
                return
            pending.tries += 1
            pending.wait *= 2
            self._send_rreq(destination)
            pending.timer = self.deployment.timers.one_shot(
                pending.wait, lambda: self._retry(destination)
            )

    def originate_rerr(self, destinations: List[int]) -> None:
        pairs = []
        for destination in destinations:
            self.drop_route(destination)
            route = self.aodv_state.table.get(destination)
            pairs.append((destination, route.seqnum if route else None))
        self.send_message(
            "AODV_RERR_OUT", build_aodv_rerr(pairs, self.local_address)
        )
