"""AODV in MANETKit.

AODV was the original proof-of-concept protocol of the Java MANETKit
prototype (paper section 5, citing [35]); re-implementing it here gives a
third data point for the code-reuse analysis (Table 3 / Fig 7) and
exercises the Neighbour Detection CF's piggybacking service — "an AODV
implementation might piggyback routing table entries so that neighbours
can learn new routes" (section 4.3).

Unlike DYMO, AODV builds routes hop-by-hop (reverse routes from RREQs,
forward routes from RREPs) instead of accumulating whole paths.
"""

from repro.protocols.aodv.messages import (
    build_rrep,
    build_rreq,
    build_aodv_rerr,
    parse_rrep,
    parse_rreq,
    parse_aodv_rerr,
)
from repro.protocols.aodv.protocol import AodvCF, AodvState

__all__ = [
    "AodvCF",
    "AodvState",
    "build_rreq",
    "build_rrep",
    "build_aodv_rerr",
    "parse_rreq",
    "parse_rrep",
    "parse_aodv_rerr",
]
