"""Live-reconfiguration benchmarks — the cost of switching while running.

Two tiers, mirroring the scale ladder:

* **smoke** (per-PR CI): the 12-node smoke battery; emits
  ``BENCH_reconfig.json``, gated at 10% by ``tools/bench_check.py
  --only reconfig``.
* **200-node standard battery** (nightly / local): the acceptance
  configuration — every ordered protocol pair once on the 20x10 grid
  under mobility and Gilbert-Elliott bursts, then two info-grade
  concurrency flips.  Too slow for per-PR CI (~8 min); select with
  ``RECONFIG_SCALE=200``.  Emits ``BENCH_reconfig200.json``.

Every gated metric is a *simulated-time* quantity (quiesce seconds,
blackout seconds, loss percentage, handover payload bytes) from a
seeded single-threaded run, so the values are bit-deterministic under
``PYTHONHASHSEED=0`` and CI can hold them to a tight band without
flaking on runner speed.  Wall-clock is emitted info-grade.
"""

from __future__ import annotations

import os
import time
from typing import Dict

import pytest

from conftest import record_bench
from repro.obs.bench import BenchMetric
from repro.sim.reconfig_battery import (
    BatteryReport,
    ReconfigBattery,
    smoke_battery,
    standard_battery,
)


def _metric_key(label: str) -> str:
    return label.replace("->", "_to_").replace("-", "_")


def _battery_metrics(
    prefix: str, report: BatteryReport, wall: float
) -> Dict[str, BenchMetric]:
    metrics: Dict[str, BenchMetric] = {}
    for result in report.gated():
        key = f"{prefix}.{_metric_key(result.label)}"
        metrics[f"{key}.quiesce_s"] = BenchMetric(
            value=result.quiesce_s, unit="s", direction="lower"
        )
        metrics[f"{key}.blackout_s"] = BenchMetric(
            value=result.blackout_s, unit="s", direction="lower"
        )
        metrics[f"{key}.loss_pct"] = BenchMetric(
            value=result.loss_pct, unit="%", direction="lower"
        )
        metrics[f"{key}.state_transfer_bytes"] = BenchMetric(
            value=result.state_transfer_bytes, unit="B", direction="info"
        )
    aggregates = report.aggregates()
    metrics[f"{prefix}.quiesce_s_max"] = BenchMetric(
        value=aggregates["quiesce_s_max"], unit="s", direction="lower"
    )
    metrics[f"{prefix}.quiesce_s_mean"] = BenchMetric(
        value=aggregates["quiesce_s_mean"], unit="s", direction="lower"
    )
    metrics[f"{prefix}.blackout_s_max"] = BenchMetric(
        value=aggregates["blackout_s_max"], unit="s", direction="lower"
    )
    metrics[f"{prefix}.loss_pct_max"] = BenchMetric(
        value=aggregates["loss_pct_max"], unit="%", direction="lower"
    )
    metrics[f"{prefix}.converged"] = BenchMetric(
        value=aggregates["converged"], unit="switches", direction="higher"
    )
    metrics[f"{prefix}.state_transfer_bytes_total"] = BenchMetric(
        value=aggregates["state_transfer_bytes_total"], unit="B",
        direction="info",
    )
    metrics[f"{prefix}.wall_s"] = BenchMetric(
        value=wall, unit="s", direction="info"
    )
    return metrics


def test_reconfig_bench_emit():
    """The CI smoke tier: three switches on the 12-node grid, gated."""
    config = smoke_battery()
    battery = ReconfigBattery(config)
    t0 = time.perf_counter()
    report = battery.run()
    wall = time.perf_counter() - t0

    assert report.all_converged, [r.label for r in report.results
                                  if not r.converged]
    for result in report.gated():
        assert result.loss_pct <= 60.0, f"{result.label}: {result.loss_pct}%"
        assert result.state_transfer_bytes > 0

    record_bench(
        "reconfig",
        _battery_metrics("reconfig", report, wall),
        meta={
            "nodes": config.nodes, "seed": config.seed,
            "switches": len(config.switches), "tier": "smoke",
        },
    )


def test_reconfig_battery_200():
    """The acceptance battery: >=6 distinct switch pairs at 200 nodes."""
    if os.environ.get("RECONFIG_SCALE") != "200":
        pytest.skip(
            "200-node battery not selected; set RECONFIG_SCALE=200 "
            "(nightly CI / baseline refresh does)"
        )
    config = standard_battery()
    battery = ReconfigBattery(config)
    t0 = time.perf_counter()
    report = battery.run()
    wall = time.perf_counter() - t0

    gated = report.gated()
    assert len(gated) == 6
    assert len({r.label for r in gated}) == 6
    assert len(report.results) == len(config.switches)
    assert report.all_converged, [r.label for r in report.results
                                  if not r.converged]
    for result in gated:
        assert result.sent_window > 0
        assert result.state_transfer_bytes > 0

    record_bench(
        "reconfig200",
        _battery_metrics("reconfig200", report, wall),
        meta={
            "nodes": config.nodes, "seed": config.seed,
            "switches": len(config.switches), "tier": "standard",
        },
    )
