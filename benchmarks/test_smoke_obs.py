"""Smoke benchmark — the fast subset CI runs on every push.

Selected with ``pytest benchmarks -k smoke``; finishes in well under a
minute and emits ``results/BENCH_smoke.json`` through the ``repro.obs``
bench emitter.  The gated metrics are **deterministic** quantities
(simulated-time delays, frame/byte/event counts — identical on every
machine for a given seed), so ``tools/bench_check.py`` can hold them to a
25% band against ``benchmarks/baseline/`` without flaking on runner
speed.  Raw wall-clock timings are emitted as ``info`` metrics: recorded
and uploaded, never gated.

The last test doubles as the instrumentation-overhead guard: with tracing
disabled (the default) the observability layer must not slow the Table 1
message-processing path by more than a few percent; we assert the wire
path still handles a message in comfortably under a millisecond and that
a traced run records the expected structure.
"""

from __future__ import annotations

import statistics
import time

from conftest import (
    build_mkit_dymo_chain,
    build_mkit_olsr_chain,
    record_bench,
)
from repro.obs.bench import BenchMetric, metric_from_samples
from repro.core import ManetKit
from repro.sim import Simulation


SEEDS = (1, 2, 3)


def _dymo_discovery_sim_seconds(seed: int):
    """One DYMO route discovery over the 5-node chain, all in sim time."""
    sim, ids, _kits = build_mkit_dymo_chain(seed=seed)
    sim.run(5.0)
    delivered = []
    sim.node(ids[-1]).add_app_receiver(delivered.append)
    start = sim.now
    sim.node(ids[0]).send_data(ids[-1], b"probe")
    while sim.now - start < 10.0 and not delivered:
        sim.run(0.0005)
    assert delivered, f"discovery failed (seed {seed})"
    return sim.now - start, sim


def test_smoke_bench_emit():
    """Emit the gated smoke metrics: DYMO discovery + control overhead."""
    delays = []
    last_sim = None
    for seed in SEEDS:
        delay, last_sim = _dymo_discovery_sim_seconds(seed)
        delays.append(delay * 1000.0)

    # Control overhead of the last run (fixed seed => deterministic).
    stats = last_sim.stats
    snapshot = last_sim.obs.registry.snapshot()["collected"]

    # Wall-clock micro: message processing through the full MANETKit
    # receive path (info-grade; machine-dependent).
    wall = _message_processing_wall_seconds()

    metrics = {
        "dymo.route_establishment.sim_ms": metric_from_samples(
            delays, unit="ms", direction="lower"
        ),
        "dymo.control_frames": BenchMetric(
            value=stats.total_control_frames, unit="frames", direction="lower"
        ),
        "dymo.control_bytes": BenchMetric(
            value=stats.total_control_bytes, unit="B", direction="lower"
        ),
        "dymo.sched_events": BenchMetric(
            value=snapshot["sched.events_executed"], unit="events",
            direction="lower",
        ),
        "dymo.delivery_ratio": BenchMetric(
            value=stats.delivery_ratio(), unit="", direction="higher"
        ),
        "table1.mkit_dymo.msg_wall_ms": metric_from_samples(
            [w * 1000.0 for w in wall], unit="ms", direction="info"
        ),
    }
    record_bench("smoke", metrics, meta={"seeds": list(SEEDS)})

    # Deterministic sanity: DYMO crosses the chain in tens of sim-ms.
    assert 5 < statistics.mean(delays) < 100


def _message_processing_wall_seconds(rounds: int = 200):
    """Wall time per RREQ through the componentised receive path."""
    from repro.packetbb.packet import Packet, encode
    from repro.protocols.dymo.messages import RREQ, build_re

    sim = Simulation(seed=0)
    a = sim.add_node()
    b = sim.add_node()
    kit = ManetKit(b)
    kit.load_protocol("dymo")
    payloads = [
        encode(Packet([
            build_re(RREQ, target=b.node_id,
                     path=[(a.node_id, (seq % 0xFFFF) or 1)], hop_limit=10)
        ], seqnum=seq & 0xFFFF))
        for seq in range(1, rounds + 1)
    ]
    samples = []
    for payload in payloads:
        t0 = time.perf_counter()
        kit.system.sys_forward._on_wire(payload, a.node_id)
        samples.append(time.perf_counter() - t0)
    return samples


def test_smoke_tracing_disabled_overhead():
    """Tracing off (default): the wire path stays fast and untraced.

    This is the CI guard for the "<=5% overhead when tracing is disabled"
    acceptance bar: with the default configuration no trace recorder
    exists, so the per-message cost of the observability layer is a
    couple of attribute checks.  We bound the absolute median cost
    loosely (an order of magnitude above a healthy run) purely to catch
    accidental always-on instrumentation.
    """
    samples = _message_processing_wall_seconds(rounds=300)
    median = statistics.median(samples)
    assert median < 0.005, f"message path suspiciously slow: {median * 1e3:.3f} ms"


def test_smoke_tracing_disabled_allocates_nothing():
    """Pin the disabled-path cost: ZERO allocations in the tracing layer.

    The "disabled tracing costs one attribute check" contract means the
    instrumented hot paths (medium, node, kernel table, unit dispatch)
    must not build attrs dicts, provenance ids or trace records when no
    recorder is installed.  tracemalloc filtered to the tracing modules
    makes that a hard assertion rather than a timing heuristic.
    """
    import tracemalloc

    import repro.obs.causal as causal_mod
    import repro.obs.profile as profile_mod
    import repro.obs.trace as trace_mod

    sim, ids, _kits = build_mkit_dymo_chain(seed=2)
    sim.run(5.0)  # warm up: caches, lazy imports, steady-state timers
    sim.node(ids[0]).send_data(ids[-1], b"probe")

    trace_filter = [
        tracemalloc.Filter(True, trace_mod.__file__),
        tracemalloc.Filter(True, causal_mod.__file__),
        # The profiler has the same contract: seams guard with one
        # attribute load + None check and never enter profile.py when
        # profiling is off.
        tracemalloc.Filter(True, profile_mod.__file__),
    ]
    tracemalloc.start(1)
    try:
        sim.run(10.0)  # discovery + steady state, tracing disabled
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    stats = snapshot.filter_traces(trace_filter).statistics("filename")
    allocated = sum(stat.size for stat in stats)
    assert allocated == 0, (
        f"tracing layer allocated {allocated} B while disabled: {stats}"
    )


def test_smoke_tracing_enabled_records_structure():
    """Tracing on: one OLSR run yields spans for scheduler + protocol."""
    sim, ids, _kits = build_mkit_olsr_chain(node_count=3, seed=1)
    tracer = sim.enable_tracing()
    sim.run(3.0)
    counts = tracer.counts_by_name()
    assert counts.get("sched.dispatch", 0) > 0
    assert counts.get("unit.process", 0) > 0
    assert counts.get("medium.broadcast", 0) > 0
    # Two records (begin/end) per span, so both counters are even.
    assert counts["sched.dispatch"] % 2 == 0
