"""Ablation — ZRP-style hybrid vs pure proactive vs pure reactive.

The hybrid exists because neither pure class wins everywhere (paper
sections 1-2): proactive OLSR pays a constant topology-dissemination tax
that grows with network size; reactive DYMO pays per-flow discovery
floods.  The hybrid's scoped proactive zone makes *local* traffic free
while keeping the background tax bounded.

This bench runs a 12-node chain under a traffic mix swept from all-local
(neighbour-to-neighbour flows) to all-remote (end-to-end flows) and
reports total control frames — the crossover structure is the reason
hybrids exist.
"""

from __future__ import annotations

import pytest

from conftest import record
from repro.analysis.tables import render_table
from repro.core import ManetKit
from repro.protocols.hybrid import deploy_zrp
from repro.sim import Simulation, topology

import repro.protocols  # noqa: F401

NODES = 12
WINDOW = 30.0
LOCAL_FLOWS = [(1, 3), (4, 6), (7, 9), (10, 12)]       # 2 hops each
REMOTE_FLOWS = [(1, 12), (2, 11), (3, 10), (12, 1)]    # 9-11 hops


def _build(mode, seed):
    sim = Simulation(seed=seed)
    for node_id in range(1, NODES + 1):
        sim.add_node(node_id=node_id)
    sim.topology.apply(topology.linear_chain(sim.node_ids()))
    for node_id in sim.node_ids():
        kit = ManetKit(sim.node(node_id))
        if mode == "olsr":
            kit.load_protocol("mpr", hello_interval=0.5)
            kit.load_protocol("olsr", tc_interval=1.0)
        elif mode == "dymo":
            kit.load_protocol("dymo")
        else:  # hybrid
            deploy_zrp(kit, zone_radius=2)
    sim.run(20.0)  # converge whatever is proactive
    return sim


def _run_mix(mode, local_fraction, seed=23):
    sim = _build(mode, seed)
    flows = []
    flow_specs = (
        LOCAL_FLOWS[: int(round(local_fraction * len(LOCAL_FLOWS)))]
        + REMOTE_FLOWS[: len(REMOTE_FLOWS)
                       - int(round(local_fraction * len(REMOTE_FLOWS)))]
    )
    before = sim.stats.total_control_frames
    for src, dst in flow_specs:
        flows.append(sim.start_cbr(src, dst, interval=0.5))
    sim.run(WINDOW)
    for flow in flows:
        flow.stop()
    control = sim.stats.total_control_frames - before
    delivery = sim.stats.delivery_ratio()
    return control, delivery


@pytest.mark.benchmark(group="ablation-hybrid")
def test_hybrid_vs_pure_protocols(benchmark):
    results = {}

    def measure():
        for mode in ("olsr", "dymo", "hybrid"):
            for label, local_fraction in (("local", 1.0), ("remote", 0.0)):
                results[(mode, label)] = _run_mix(mode, local_fraction)

    benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = [
        [
            mode,
            results[(mode, "local")][0],
            f"{results[(mode, 'local')][1]:.0%}",
            results[(mode, "remote")][0],
            f"{results[(mode, 'remote')][1]:.0%}",
        ]
        for mode in ("olsr", "dymo", "hybrid")
    ]
    text = render_table(
        f"Ablation - hybrid (ZRP-style) vs pure protocols: control frames "
        f"over {WINDOW:.0f}s on a {NODES}-node chain",
        ["mode", "local traffic", "delivery", "remote traffic", "delivery"],
        rows,
    )
    record("ablation_hybrid", text)

    # everyone delivers
    for key, (_control, delivery) in results.items():
        assert delivery > 0.9, key
    # under local traffic, the hybrid's scoped zone beats pure OLSR's
    # network-wide dissemination tax
    assert results[("hybrid", "local")][0] < results[("olsr", "local")][0]
    # pure DYMO's cost rises with remote traffic (discovery floods),
    # while the proactive tax is traffic-independent
    assert results[("dymo", "remote")][0] > results[("dymo", "local")][0]