"""Table 2 — Comparative Resource Overhead (memory footprint).

Paper reference (KB, resident binaries on the testbed):
    olsrd 136.3 | MKit-OLSR 179.0 | DYMOUM 120.4 | MKit-DYMO 178.1
    olsrd+DYMOUM 256.7 | MKit-OLSR+MKit-DYMO 236.6

Our measurement is the deep object-graph footprint of freshly deployed
stacks (substrate/OS objects excluded, shared objects de-duplicated).
The monolithic pair is the *sum* of two separately measured daemons —
separate processes share nothing — while the MANETKit pair is one combined
deployment whose protocols share the OpenCom kernel, the System CF, the
Framework Manager and (with optimised flooding) the MPR CF.

Reproduced shape: each MANETKit protocol alone costs more than its
monolithic counterpart, but co-deployment amortises the shared machinery —
the combined deployment is far below the sum of the two single-protocol
deployments.  The paper's final crossover (MKit pair < monolith pair) does
NOT reproduce because our monolithic stand-ins are minimal (~500 lines
each) whereas real Unik-olsrd is a ~30k-line daemon; EXPERIMENTS.md
quantifies this.
"""

from __future__ import annotations

import pytest

from conftest import HELLO_INTERVAL, TC_INTERVAL, record
from repro.analysis.footprint import footprint_kb
from repro.analysis.tables import render_table
from repro.core import ManetKit
from repro.monolithic import DymoumDaemon, OlsrdDaemon
from repro.protocols.dymo.flooding import apply_optimised_flooding
from repro.sim import Simulation


def _fresh_deployments():
    sim = Simulation(seed=0)
    nodes = [sim.add_node() for _ in range(6)]

    kit_olsr = ManetKit(nodes[0])
    kit_olsr.load_protocol("mpr", hello_interval=HELLO_INTERVAL)
    kit_olsr.load_protocol("olsr", tc_interval=TC_INTERVAL)

    kit_dymo = ManetKit(nodes[1])
    kit_dymo.load_protocol("dymo")

    kit_both = ManetKit(nodes[2])
    kit_both.load_protocol("mpr", hello_interval=HELLO_INTERVAL)
    kit_both.load_protocol("olsr", tc_interval=TC_INTERVAL)
    kit_both.load_protocol("dymo")
    apply_optimised_flooding(kit_both)  # the shared-MPR lean deployment

    olsrd = OlsrdDaemon(nodes[3])
    olsrd.start()
    dymoum = DymoumDaemon(nodes[4])
    dymoum.start()
    return kit_olsr, kit_dymo, kit_both, olsrd, dymoum


@pytest.mark.benchmark(group="table2-footprint")
def test_table2_memory_footprint(benchmark):
    results = {}

    def measure():
        kit_olsr, kit_dymo, kit_both, olsrd, dymoum = _fresh_deployments()
        results.update(
            {
                "olsrd": footprint_kb([olsrd]),
                "MKit-OLSR": footprint_kb([kit_olsr]),
                "DYMOUM-0.3": footprint_kb([dymoum]),
                "MKit-DYMO": footprint_kb([kit_dymo]),
                # separate daemons share nothing: the pair is the sum
                "olsrd + DYMOUM": footprint_kb([olsrd]) + footprint_kb([dymoum]),
                "MKit OLSR+DYMO": footprint_kb([kit_both]),
            }
        )
        # the kernel-unload optimisation (section 6.2 footnote 3)
        kit_both.kernel.unload_kernel()
        results["MKit OLSR+DYMO (kernel unloaded)"] = footprint_kb([kit_both])

    benchmark.pedantic(measure, rounds=1, iterations=1)

    paper = {
        "olsrd": 136.3,
        "MKit-OLSR": 179.0,
        "DYMOUM-0.3": 120.4,
        "MKit-DYMO": 178.1,
        "olsrd + DYMOUM": 256.7,
        "MKit OLSR+DYMO": 236.6,
        "MKit OLSR+DYMO (kernel unloaded)": None,
    }
    rows = [
        [name, f"{results[name]:.1f}",
         f"{paper[name]:.1f}" if paper[name] is not None else "-"]
        for name in paper
    ]
    single_sum = results["MKit-OLSR"] + results["MKit-DYMO"]
    sharing = 100.0 * (1.0 - results["MKit OLSR+DYMO"] / single_sum)
    text = render_table(
        "Table 2 - Memory Footprint (KB; measured = deep object graph)",
        ["deployment", "measured", "paper"],
        rows,
    ) + (
        f"\n\nSharing amortisation: combined MANETKit deployment is "
        f"{sharing:.0f}% below the sum of the two single-protocol "
        f"deployments ({single_sum:.1f} KB)."
    )
    record("table2_footprint", text)

    # -- shape assertions ---------------------------------------------------
    # each MANETKit protocol alone is heavier than its monolith (framework
    # machinery + OpenCom runtime), as in the paper's +31% / +48%
    assert results["MKit-OLSR"] > results["olsrd"]
    assert results["MKit-DYMO"] > results["DYMOUM-0.3"]
    # co-deployment amortises shared machinery (the Table 2 mechanism)
    assert results["MKit OLSR+DYMO"] < single_sum * 0.85
    # unloading the OpenCom kernel registry never increases the footprint
    assert (
        results["MKit OLSR+DYMO (kernel unloaded)"]
        <= results["MKit OLSR+DYMO"]
    )
