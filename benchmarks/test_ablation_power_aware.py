"""Ablation — the cost of the power-aware OLSR variant (paper section 5.1).

"If there is no such requirement, the variation becomes a hindrance (and
therefore should be removed) because it incurs significantly more overhead
than standard OLSR routing."  This bench quantifies that overhead (control
frames and bytes) on a mid-size network, standard vs power-aware, and then
confirms the overhead disappears again after `remove_power_aware` — the
round-trip reconfiguration the paper motivates.
"""

from __future__ import annotations

import pytest

from conftest import HELLO_INTERVAL, TC_INTERVAL, record
from repro.analysis.tables import render_table
from repro.core import ManetKit
from repro.protocols.olsr.power_aware import apply_power_aware, remove_power_aware
from repro.sim import Simulation, topology

import repro.protocols  # noqa: F401

MEASURE_WINDOW = 30.0


def _build(seed=17):
    sim = Simulation(seed=seed)
    sim.add_nodes(6)
    ids = sim.node_ids()
    sim.topology.apply(topology.grid(3, 2, first_id=ids[0]))
    kits = {}
    for node_id in ids:
        kit = ManetKit(sim.node(node_id))
        kit.load_protocol("mpr", hello_interval=HELLO_INTERVAL)
        kit.load_protocol("olsr", tc_interval=TC_INTERVAL)
        kits[node_id] = kit
    sim.run(10.0)
    return sim, kits


def _window_load(sim):
    frames_before = sim.stats.total_control_frames
    bytes_before = sim.stats.total_control_bytes
    sim.run(MEASURE_WINDOW)
    return (
        (sim.stats.total_control_frames - frames_before) / MEASURE_WINDOW,
        (sim.stats.total_control_bytes - bytes_before) / MEASURE_WINDOW,
    )


@pytest.mark.benchmark(group="ablation-power-aware")
def test_power_aware_overhead_roundtrip(benchmark):
    results = {}

    def measure():
        sim, kits = _build()
        results["standard"] = _window_load(sim)
        for kit in kits.values():
            apply_power_aware(kit)
        results["power-aware"] = _window_load(sim)
        for kit in kits.values():
            remove_power_aware(kit)
        results["removed again"] = _window_load(sim)

    benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = [
        [label, f"{frames:.2f}", f"{byte_rate:.0f}"]
        for label, (frames, byte_rate) in results.items()
    ]
    text = render_table(
        "Ablation - power-aware OLSR overhead (per-second, 6-node grid)",
        ["configuration", "control frames/s", "control bytes/s"],
        rows,
    )
    record("ablation_power_aware", text)

    # the variant costs more than standard OLSR...
    assert results["power-aware"][0] > results["standard"][0]
    assert results["power-aware"][1] > results["standard"][1]
    # ...and removing it restores (approximately) the standard load
    assert results["removed again"][0] < results["power-aware"][0]
    assert results["removed again"][0] <= results["standard"][0] * 1.2