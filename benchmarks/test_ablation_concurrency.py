"""Ablation — pluggable concurrency models (paper section 4.4).

The paper positions the models on a throughput/overhead spectrum:
single-threaded (low overhead, low throughput) < thread-per-ManetProtocol
< thread-per-message (high overhead, high throughput).  This bench drives
an event burst through each model and reports wall-clock throughput plus
the dispatch overhead per event for a no-op workload.
"""

from __future__ import annotations

import threading
import time

import pytest

from conftest import record
from repro.analysis.tables import render_table
from repro.concurrency.models import make_model
from repro.events.event import Event
from repro.events.types import ontology

MODELS = (
    "single-threaded",
    "thread-per-n-messages",
    "thread-per-protocol",
    "thread-per-message",
)
BURST = 400


class _Unit:
    def __init__(self, name, work_seconds=0.0, blocking=False):
        self.name = name
        self.lock = threading.RLock()
        self.work_seconds = work_seconds
        self.blocking = blocking
        self.processed = 0

    def process_event(self, _event):
        if self.work_seconds:
            if self.blocking:
                # IO-bound handler (socket write, kernel-table syscall):
                # releases the GIL, so threaded models can overlap units
                time.sleep(self.work_seconds)
            else:
                # CPU-bound handler: spins holding the GIL
                deadline = time.perf_counter() + self.work_seconds
                while time.perf_counter() < deadline:
                    pass
        self.processed += 1


def _drive(model_name, unit_count, work_seconds, blocking=False, burst=BURST):
    model = make_model(model_name)
    units = [_Unit(f"u{i}", work_seconds, blocking) for i in range(unit_count)]
    events = [Event(ontology.get("HELLO_IN")) for _ in range(burst)]
    start = time.perf_counter()
    for event in events:
        for unit in units:
            model.dispatch(unit, event)
    assert model.drain(timeout=60.0)
    elapsed = time.perf_counter() - start
    model.shutdown()
    assert all(unit.processed == burst for unit in units)
    return elapsed


@pytest.mark.benchmark(group="ablation-concurrency")
def test_concurrency_model_throughput(benchmark):
    results = {}

    def measure():
        for model_name in MODELS:
            # dispatch overhead: 4 protocols, no per-event work
            overhead = _drive(model_name, unit_count=4, work_seconds=0.0)
            # CPU-bound: 50 us of GIL-holding work per event
            cpu = _drive(model_name, unit_count=4, work_seconds=50e-6)
            # IO-bound: 2 ms of blocking (GIL-releasing) work per event
            io = _drive(
                model_name, unit_count=4, work_seconds=2e-3,
                blocking=True, burst=50,
            )
            results[model_name] = (overhead, cpu, io)

    benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = [
        [
            name,
            f"{results[name][0] * 1e6 / (BURST * 4):.1f}",
            f"{BURST * 4 / results[name][1]:.0f}",
            f"{50 * 4 / results[name][2]:.0f}",
        ]
        for name in MODELS
    ]
    text = render_table(
        "Ablation - concurrency models "
        f"({BURST} events x 4 protocols; CPU = 50us spin, IO = 2ms block)",
        ["model", "dispatch overhead (us/event)",
         "CPU-bound throughput (ev/s)", "IO-bound throughput (ev/s)"],
        rows,
    ) + (
        "\n\nCPython note: CPU-bound handlers serialise on the GIL, so the "
        "paper's throughput benefit only reproduces for blocking (IO-bound) "
        "handler work, where thread-per-message overlaps the 4 protocols."
    )
    record("ablation_concurrency", text)

    # single-threaded has the lowest per-event dispatch overhead (paper:
    # "low resource overhead and low protocol throughput")
    single_overhead = results["single-threaded"][0]
    assert all(
        single_overhead <= results[name][0] * 1.25
        for name in MODELS
    )
    # ...and the highest-concurrency model wins when handlers block
    # (the paper's "high resource overhead and high protocol throughput")
    assert results["thread-per-message"][2] < results["single-threaded"][2]
    assert results["thread-per-protocol"][2] < results["single-threaded"][2]
