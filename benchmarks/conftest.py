"""Shared machinery for the benchmark harness.

Every benchmark regenerates one of the paper's evaluation artefacts
(Tables 1-3, Fig 7) or an ablation of a design choice the paper calls out.
Results are printed in paper-style tables AND written to
``benchmarks/results/*.txt`` so they survive pytest's output capture.

Experimental configuration mirrors section 6: a 5-node 802.11-style chain,
single-threaded concurrency, identical protocol parameters for the
MANETKit and monolithic implementations.  The route-establishment
experiments use HELLO=0.5 s / TC=1 s — with RFC-default intervals the
paper's ~1 s OLSR result is unreachable on any implementation, so its
testbed evidently ran accelerated timers (EXPERIMENTS.md discusses this).
"""

from __future__ import annotations

import pathlib
from typing import Dict, Optional, Union

import pytest

from repro.core import ManetKit
from repro.monolithic import DymoumDaemon, OlsrdDaemon
from repro.obs.bench import BenchMetric, metric_from_samples, write_bench
from repro.sim import Simulation, topology

import repro.protocols  # noqa: F401

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Accelerated timers used for the route-establishment experiments.
HELLO_INTERVAL = 0.5
TC_INTERVAL = 1.0


def record(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def record_bench(
    name: str,
    metrics: Dict[str, Union[BenchMetric, float, int]],
    meta: Optional[Dict[str, object]] = None,
) -> pathlib.Path:
    """Persist machine-readable results as ``results/BENCH_<name>.json``.

    The emitted file is what CI uploads as an artifact and what
    ``tools/bench_check.py`` gates against ``benchmarks/baseline/``.
    """
    path = write_bench(name, metrics, RESULTS_DIR, meta=meta)
    print(f"\n[bench] wrote {path}")
    return path


# ---------------------------------------------------------------------------
# pytest-benchmark bridge: every micro benchmark in the session is exported
# as an info-grade (machine-dependent, never gated) BENCH metric.
# ---------------------------------------------------------------------------

def pytest_sessionfinish(session, exitstatus):
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not getattr(bench_session, "benchmarks", None):
        return
    metrics: Dict[str, BenchMetric] = {}
    for bench in bench_session.benchmarks:
        stats = getattr(bench, "stats", None)
        data = list(getattr(stats, "data", []) or [])
        if not data:
            continue
        key = bench.name.replace("test_", "", 1)
        metrics[f"micro.{key}.wall_s"] = metric_from_samples(
            data, unit="s", direction="info"
        )
    if metrics:
        write_bench("micro", metrics, RESULTS_DIR)


# ---------------------------------------------------------------------------
# Deployment builders (one topology convention: the paper's 5-node chain)
# ---------------------------------------------------------------------------

def build_mkit_olsr_chain(node_count=5, seed=0, fast=True):
    sim = Simulation(seed=seed)
    sim.add_nodes(node_count)
    ids = sim.node_ids()
    sim.topology.apply(topology.linear_chain(ids))
    kits = {}
    for node_id in ids:
        kit = ManetKit(sim.node(node_id))
        if fast:
            kit.load_protocol("mpr", hello_interval=HELLO_INTERVAL)
            kit.load_protocol("olsr", tc_interval=TC_INTERVAL)
        else:
            kit.load_protocol("olsr")
        kits[node_id] = kit
    return sim, ids, kits


def build_mkit_dymo_chain(node_count=5, seed=0):
    sim = Simulation(seed=seed)
    sim.add_nodes(node_count)
    ids = sim.node_ids()
    sim.topology.apply(topology.linear_chain(ids))
    kits = {}
    for node_id in ids:
        kit = ManetKit(sim.node(node_id))
        kit.load_protocol("dymo")
        kits[node_id] = kit
    return sim, ids, kits


def build_olsrd_chain(node_count=5, seed=0):
    sim = Simulation(seed=seed)
    sim.add_nodes(node_count)
    ids = sim.node_ids()
    sim.topology.apply(topology.linear_chain(ids))
    daemons = {}
    for node_id in ids:
        daemon = OlsrdDaemon(
            sim.node(node_id),
            hello_interval=HELLO_INTERVAL,
            tc_interval=TC_INTERVAL,
        )
        daemon.start()
        daemons[node_id] = daemon
    return sim, ids, daemons


def build_dymoum_chain(node_count=5, seed=0):
    sim = Simulation(seed=seed)
    sim.add_nodes(node_count)
    ids = sim.node_ids()
    sim.topology.apply(topology.linear_chain(ids))
    daemons = {}
    for node_id in ids:
        daemon = DymoumDaemon(sim.node(node_id))
        daemon.start()
        daemons[node_id] = daemon
    return sim, ids, daemons
