"""Scale benchmarks — the 200-node gate plus the 500/1000-node ladder.

Selected with ``pytest benchmarks -k "scale and not ladder"`` (per-PR CI)
or ``-k scale_ladder`` (nightly); runs the scenarios used to size the
event-pipeline refactor (indexed dispatch, timer wheel, batched broadcast
delivery) and the incremental-route refactor (dynamic SPT repair, scoped
MPR reselection, interned decode):

* **OLSR**: nodes on a near-square grid, RFC-default HELLO/TC intervals,
  proactive churn.  This is the scheduler- and recompute-bound workload —
  every node floods HELLOs and TCs, and every received TC triggers a route
  refresh, so the run is dominated by broadcast delivery and route
  maintenance.
* **DYMO** (200-node gate only): the same grid with 8 cross-grid CBR
  flows, exercising the reactive path at scale.

All gated metrics are **deterministic** quantities (event counts, frame
counts, hit ratios for a fixed seed), so CI holds them to a tight band —
``tools/bench_check.py --tolerance 0.10 --only scale`` — without flaking
on runner speed.  Wall-clock is emitted ``info``-grade only.

The **ladder rungs** (500 and 1000 nodes) are too slow for per-PR CI; the
``scale-ladder`` workflow runs them nightly, selected via the
``SCALE_RUNG`` environment variable (comma-separated rung sizes, e.g.
``SCALE_RUNG=500,1000``).  The 500-node rung is gated against its
committed baseline; the 1000-node rung reports until its budget is proven.
"""

from __future__ import annotations

import os
import time

import pytest

from conftest import record_bench
from repro.core import ManetKit
from repro.obs.bench import BenchMetric
from repro.packetbb.packet import decode_cache_stats, reset_decode_cache
from repro.sim import Simulation
from repro.tools.scenario import parse_topology

import repro.protocols  # noqa: F401

NODES = 200
SEED = 7
DURATION = 60.0
FLOWS = 8

#: sim-seconds per ladder rung — sized so the 500-node rung converges
#: (TC information crosses the grid several times over) while staying
#: within a nightly wall-clock budget.
LADDER_DURATIONS = {500: 20.0, 1000: 10.0}


def _grid_sim(nodes=NODES):
    sim = Simulation(seed=SEED)
    # Same entry point the scenario CLI uses for --nodes N --topology grid.
    ids = parse_topology("grid", sim, nodes=nodes)
    return sim, ids


def _index_hit_ratio(sim):
    """Dispatch-index effectiveness summed over every node's manager."""
    collected = sim.obs.registry.snapshot()["collected"]
    hits = sum(v for k, v in collected.items() if "index_hits{" in k)
    misses = sum(v for k, v in collected.items() if "index_misses{" in k)
    total = hits + misses
    return hits / total if total else 0.0


def _wheel_share(snapshot):
    wheel = snapshot["timerwheel.wheel_scheduled"]
    heap = snapshot["timerwheel.heap_scheduled"]
    total = wheel + heap
    return wheel / total if total else 0.0


def _route_calc_totals(sim):
    """Summed route_calc.* install-mode counters across all nodes."""
    totals = {"incremental": 0, "full": 0, "fallback": 0, "noop": 0}
    for key, value in sim.obs.registry.snapshot()["counters"].items():
        if key.startswith("route_calc."):
            totals[key.split("{")[0].split(".", 1)[1]] += value
    return totals


def _run_olsr_grid(nodes, duration):
    """One OLSR grid run; returns (sim, ids, executed events, wall seconds)."""
    # The decode cache is process-global: reset so its hit ratio measures
    # this run alone, deterministically.
    reset_decode_cache()
    sim, ids = _grid_sim(nodes)
    for node_id in ids:
        kit = ManetKit(sim.node(node_id))
        kit.load_protocol("mpr")
        kit.load_protocol("olsr")
    t0 = time.perf_counter()
    executed = sim.run(duration)
    wall = time.perf_counter() - t0
    return sim, ids, executed, wall


def _olsr_metrics(prefix, sim, ids, executed, wall):
    """The deterministic OLSR metric family, shared by gate and ladder."""
    snapshot = sim.obs.registry.snapshot()["collected"]
    corner_routes = len(sim.node(ids[0]).kernel_table)
    modes = _route_calc_totals(sim)
    recomputes = modes["incremental"] + modes["full"] + modes["fallback"]
    decode = decode_cache_stats()
    decode_total = decode["hits"] + decode["misses"]
    return corner_routes, {
        f"{prefix}.sched_events": BenchMetric(
            value=executed, unit="events", direction="lower"
        ),
        f"{prefix}.control_frames": BenchMetric(
            value=sim.stats.total_control_frames, unit="frames",
            direction="lower",
        ),
        f"{prefix}.control_bytes": BenchMetric(
            value=sim.stats.total_control_bytes, unit="B", direction="lower"
        ),
        f"{prefix}.index_hit_ratio": BenchMetric(
            value=_index_hit_ratio(sim), unit="", direction="higher"
        ),
        f"{prefix}.wheel_share": BenchMetric(
            value=_wheel_share(snapshot), unit="", direction="higher"
        ),
        f"{prefix}.corner_routes": BenchMetric(
            value=corner_routes, unit="routes", direction="higher"
        ),
        # Share of route refreshes served by localized SPT repair rather
        # than full recomputation — the incremental-route contract.
        f"{prefix}.incremental_share": BenchMetric(
            value=modes["incremental"] / recomputes if recomputes else 0.0,
            unit="", direction="higher",
        ),
        f"{prefix}.full_recomputes": BenchMetric(
            value=modes["full"] + modes["fallback"], unit="installs",
            direction="lower",
        ),
        f"{prefix}.decode_hit_ratio": BenchMetric(
            value=decode["hits"] / decode_total if decode_total else 0.0,
            unit="", direction="higher",
        ),
        f"{prefix}.wall_s": BenchMetric(value=wall, unit="s", direction="info"),
    }


def test_scale_bench_emit():
    metrics = {}

    # -- OLSR: proactive flooding on the full grid --------------------------
    sim, ids, executed, olsr_wall = _run_olsr_grid(NODES, DURATION)
    corner_routes, olsr_metrics = _olsr_metrics(
        "scale.olsr", sim, ids, executed, olsr_wall
    )
    metrics.update(olsr_metrics)

    # Convergence sanity: the corner node routes to (nearly) everyone.
    assert corner_routes >= NODES - 5

    # -- DYMO: reactive discovery + cross-grid CBR traffic ------------------
    sim, ids = _grid_sim()
    for node_id in ids:
        kit = ManetKit(sim.node(node_id))
        proto = kit.load_protocol("dymo")
        # The default RREQ hop limit (NET_DIAMETER=10) cannot span a
        # 20x10 grid's ~28-hop diagonal; raise it so discovery succeeds.
        proto.configurator.update({"net_diameter": 32})
    for i in range(FLOWS):
        sim.start_cbr(
            ids[i], ids[-1 - i], interval=1.0, start_delay=1.0 + 0.1 * i
        )
    t0 = time.perf_counter()
    executed = sim.run(DURATION)
    dymo_wall = time.perf_counter() - t0
    metrics.update({
        "scale.dymo.sched_events": BenchMetric(
            value=executed, unit="events", direction="lower"
        ),
        "scale.dymo.delivery_ratio": BenchMetric(
            value=sim.stats.delivery_ratio(), unit="", direction="higher"
        ),
        "scale.dymo.wall_s": BenchMetric(
            value=dymo_wall, unit="s", direction="info"
        ),
    })
    assert sim.stats.delivery_ratio() > 0.9

    record_bench(
        "scale",
        metrics,
        meta={
            "nodes": NODES, "seed": SEED, "duration_s": DURATION,
            "flows": FLOWS,
        },
    )


def _rung_enabled(nodes):
    rungs = os.environ.get("SCALE_RUNG", "")
    return str(nodes) in {r.strip() for r in rungs.split(",") if r.strip()}


@pytest.mark.parametrize("nodes", [500, 1000])
def test_scale_ladder(nodes):
    if not _rung_enabled(nodes):
        pytest.skip(
            f"ladder rung {nodes} not selected; set SCALE_RUNG={nodes} "
            "(nightly CI does)"
        )
    duration = LADDER_DURATIONS[nodes]
    sim, ids, executed, wall = _run_olsr_grid(nodes, duration)
    prefix = f"scale{nodes}.olsr"
    corner_routes, metrics = _olsr_metrics(prefix, sim, ids, executed, wall)
    # Shorter rung durations trade convergence margin for wall-clock: the
    # 500-node rung still converges fully; the 1000-node rung must at least
    # demonstrate grid-spanning route acquisition.
    if nodes <= 500:
        assert corner_routes >= nodes - 5
    else:
        assert corner_routes >= nodes // 2
    record_bench(
        f"scale{nodes}",
        metrics,
        meta={"nodes": nodes, "seed": SEED, "duration_s": duration},
    )
