"""Scale benchmark — the 200-node grid scenario behind the hot-path refactor.

Selected with ``pytest benchmarks -k scale``; runs the two scenarios used
to size the event-pipeline refactor (indexed dispatch, timer wheel,
batched broadcast delivery):

* **OLSR**: 200 nodes on a 20x10 grid, RFC-default HELLO/TC intervals,
  60 simulated seconds of proactive churn.  This is the scheduler-bound
  workload — every node floods HELLOs and TCs, so the run is dominated
  by broadcast delivery and timer management.
* **DYMO**: the same grid with 8 cross-grid CBR flows, exercising the
  reactive path (route discovery + data forwarding) at scale.

All gated metrics are **deterministic** quantities (event counts, frame
counts, hit ratios for a fixed seed), so CI holds them to a tight band —
``tools/bench_check.py --tolerance 0.10 --only scale`` — without flaking
on runner speed.  Wall-clock is emitted ``info``-grade only.  The
committed baseline under ``benchmarks/baseline/`` records the
post-refactor costs; an accidental revert of batching or the dispatch
index shows up here as a multiple, not a percentage.
"""

from __future__ import annotations

import time

from conftest import record_bench
from repro.core import ManetKit
from repro.obs.bench import BenchMetric
from repro.sim import Simulation
from repro.tools.scenario import parse_topology

import repro.protocols  # noqa: F401

NODES = 200
SEED = 7
DURATION = 60.0
FLOWS = 8


def _grid_sim():
    sim = Simulation(seed=SEED)
    # Same entry point the scenario CLI uses for --nodes 200 --topology grid.
    ids = parse_topology("grid", sim, nodes=NODES)
    return sim, ids


def _index_hit_ratio(sim):
    """Dispatch-index effectiveness summed over every node's manager."""
    collected = sim.obs.registry.snapshot()["collected"]
    hits = sum(v for k, v in collected.items() if "index_hits{" in k)
    misses = sum(v for k, v in collected.items() if "index_misses{" in k)
    total = hits + misses
    return hits / total if total else 0.0


def _wheel_share(snapshot):
    wheel = snapshot["timerwheel.wheel_scheduled"]
    heap = snapshot["timerwheel.heap_scheduled"]
    total = wheel + heap
    return wheel / total if total else 0.0


def test_scale_bench_emit():
    metrics = {}

    # -- OLSR: proactive flooding on the full grid --------------------------
    sim, ids = _grid_sim()
    for node_id in ids:
        kit = ManetKit(sim.node(node_id))
        kit.load_protocol("mpr")
        kit.load_protocol("olsr")
    t0 = time.perf_counter()
    executed = sim.run(DURATION)
    olsr_wall = time.perf_counter() - t0
    snapshot = sim.obs.registry.snapshot()["collected"]
    corner_routes = len(sim.node(ids[0]).kernel_table)
    metrics.update({
        "scale.olsr.sched_events": BenchMetric(
            value=executed, unit="events", direction="lower"
        ),
        "scale.olsr.control_frames": BenchMetric(
            value=sim.stats.total_control_frames, unit="frames",
            direction="lower",
        ),
        "scale.olsr.control_bytes": BenchMetric(
            value=sim.stats.total_control_bytes, unit="B", direction="lower"
        ),
        "scale.olsr.index_hit_ratio": BenchMetric(
            value=_index_hit_ratio(sim), unit="", direction="higher"
        ),
        "scale.olsr.wheel_share": BenchMetric(
            value=_wheel_share(snapshot), unit="", direction="higher"
        ),
        "scale.olsr.corner_routes": BenchMetric(
            value=corner_routes, unit="routes", direction="higher"
        ),
        "scale.olsr.wall_s": BenchMetric(
            value=olsr_wall, unit="s", direction="info"
        ),
    })

    # Convergence sanity: the corner node routes to (nearly) everyone.
    assert corner_routes >= NODES - 5

    # -- DYMO: reactive discovery + cross-grid CBR traffic ------------------
    sim, ids = _grid_sim()
    for node_id in ids:
        kit = ManetKit(sim.node(node_id))
        proto = kit.load_protocol("dymo")
        # The default RREQ hop limit (NET_DIAMETER=10) cannot span a
        # 20x10 grid's ~28-hop diagonal; raise it so discovery succeeds.
        proto.configurator.update({"net_diameter": 32})
    for i in range(FLOWS):
        sim.start_cbr(
            ids[i], ids[-1 - i], interval=1.0, start_delay=1.0 + 0.1 * i
        )
    t0 = time.perf_counter()
    executed = sim.run(DURATION)
    dymo_wall = time.perf_counter() - t0
    metrics.update({
        "scale.dymo.sched_events": BenchMetric(
            value=executed, unit="events", direction="lower"
        ),
        "scale.dymo.delivery_ratio": BenchMetric(
            value=sim.stats.delivery_ratio(), unit="", direction="higher"
        ),
        "scale.dymo.wall_s": BenchMetric(
            value=dymo_wall, unit="s", direction="info"
        ),
    })
    assert sim.stats.delivery_ratio() > 0.9

    record_bench(
        "scale",
        metrics,
        meta={
            "nodes": NODES, "seed": SEED, "duration_s": DURATION,
            "flows": FLOWS,
        },
    )
