"""Fig 7 — The proportion of reusable code in each protocol.

Paper: "the proportion contributed by the reusable components to each
protocol's codebase is 57% for OLSR and 66% for DYMO, indicating a
substantial saving in developer effort."

The figure is regenerated as data rows (reused vs protocol-specific LoC
per protocol) plus a text bar chart.
"""

from __future__ import annotations

import pytest

from conftest import record
from repro.analysis.reuse import reuse_proportions
from repro.analysis.tables import render_table

PAPER_FRACTIONS = {"olsr": 0.57, "dymo": 0.66}


def _bar(fraction: float, width: int = 40) -> str:
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


@pytest.mark.benchmark(group="fig7-reuse")
def test_fig7_reuse_proportion(benchmark):
    proportions = {}

    def measure():
        proportions.update(reuse_proportions())

    benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    bars = []
    for protocol in ("olsr", "dymo"):
        entry = proportions[protocol]
        rows.append(
            [
                protocol.upper(),
                entry["reused_loc"],
                entry["specific_loc"],
                entry["total_loc"],
                f"{entry['reused_fraction']:.0%}",
                f"{PAPER_FRACTIONS[protocol]:.0%}",
            ]
        )
        bars.append(
            f"{protocol.upper():5} reused   |{_bar(entry['reused_fraction'])}| "
            f"{entry['reused_fraction']:.0%}"
        )
    text = (
        render_table(
            "Fig 7 - Proportion of reusable code in each protocol",
            ["protocol", "reused LoC", "specific LoC", "total LoC",
             "measured", "paper"],
            rows,
        )
        + "\n\n"
        + "\n".join(bars)
    )
    record("fig7_reuse_proportion", text)

    # -- shape assertions: reuse is the majority of both codebases ----------
    assert proportions["olsr"]["reused_fraction"] > 0.5
    assert proportions["dymo"]["reused_fraction"] > 0.5
    # DYMO reuses proportionally at least as much as OLSR... in the paper
    # DYMO's fraction is higher (66% vs 57%); ours may differ slightly but
    # both must be substantial
    assert proportions["dymo"]["reused_fraction"] > 0.55