"""Ablation — gossip (probabilistic) flooding: overhead vs reliability.

Paper section 2: "Various epidemic/gossip algorithms can also be applied
in this context" (citing Haas, Halpern & Li's GOSSIP1).  The trade-off is
one-dimensional: lower relay probability saves rebroadcasts but risks the
flood dying before it reaches the target.  This bench sweeps p on a 3x3
grid and reports control cost and discovery success over multiple seeds.
"""

from __future__ import annotations

import pytest

from conftest import record
from repro.analysis.tables import render_table
from repro.core import ManetKit
from repro.protocols.dymo.flooding import apply_gossip_flooding
from repro.sim import Simulation, topology

import repro.protocols  # noqa: F401

PROBABILITIES = (1.0, 0.75, 0.5, 0.3)
SEEDS = range(8)


def _one_discovery(p, seed):
    sim = Simulation(seed=600 + seed)
    sim.add_nodes(9)
    ids = sim.node_ids()
    sim.topology.apply(topology.grid(3, 3, first_id=ids[0]))
    kits = {}
    for nid in ids:
        kit = ManetKit(sim.node(nid))
        kit.load_protocol("dymo", rreq_tries=1)  # single shot: measure the
        kits[nid] = kit                          # flood itself, not retries
        if p < 1.0:
            apply_gossip_flooding(kit, p=p, k=1)
    sim.run(5.0)
    before = sim.stats.total_control_frames
    got = []
    sim.node(ids[-1]).add_app_receiver(got.append)
    sim.node(ids[0]).send_data(ids[-1], b"x")
    sim.run(2.0)
    return sim.stats.total_control_frames - before, bool(got)


@pytest.mark.benchmark(group="ablation-gossip")
def test_gossip_probability_sweep(benchmark):
    results = {}

    def measure():
        for p in PROBABILITIES:
            runs = [_one_discovery(p, seed) for seed in SEEDS]
            frames = sum(f for f, _ok in runs) / len(runs)
            success = sum(ok for _f, ok in runs) / len(runs)
            results[p] = (frames, success)

    benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = [
        [f"p = {p:.2f}", f"{frames:.1f}", f"{success:.0%}"]
        for p, (frames, success) in results.items()
    ]
    text = render_table(
        "Ablation - GOSSIP1(p, 1) route discovery on a 3x3 grid "
        f"(mean over {len(list(SEEDS))} seeds, single RREQ attempt)",
        ["relay probability", "control frames", "discovery success"],
        rows,
    )
    record("ablation_gossip", text)

    # overhead decreases monotonically with p
    frames = [results[p][0] for p in PROBABILITIES]
    assert all(a >= b for a, b in zip(frames, frames[1:]))
    # p=1.0 is blind flooding: always succeeds
    assert results[1.0][1] == 1.0
    # very low p sometimes kills the flood (the trade-off is real)
    assert results[0.3][1] < 1.0