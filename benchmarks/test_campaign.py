"""Campaign-throughput benchmark: the multi-run workload gate.

Selected with ``pytest benchmarks -k campaign``; drives the exact sweep
the docs advertise —

    python -m repro.tools.campaign --spec examples/campaign_smoke.toml --workers 8

— as a library call, twice: serially (``workers=1``) and fanned out
(``workers=8``), with one injected worker crash in the parallel pass and
a resume pass afterwards.  Asserted here:

* **correctness** — all 24 runs complete in both passes and the parallel
  per-run results are *identical* to the serial ones (the shared-nothing
  determinism contract);
* **crash tolerance** — the injected worker death is retried and the
  sweep still completes with zero failures;
* **resume** — a re-invocation of the same campaign skips all 24 runs;
* **throughput** — ≥3x wall-clock speedup at 8 workers, asserted when
  the machine has the cores to show it (≥4; CI runners qualify).  On
  smaller boxes the assertion degrades to a sanity bound — wall-clock
  parallelism cannot exist on a single core.

Gated metrics (``BENCH_campaign.json`` vs ``benchmarks/baseline/``) are
the machine-independent sweep aggregates: run counts and the summed
control overhead / mean delivery of the 24 deterministic runs.  The
speedup and raw walls are emitted ``info``-grade because they depend on
the runner's core count.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import time

from conftest import RESULTS_DIR, record_bench
from repro.obs.bench import BenchMetric
from repro.tools.campaign import CampaignRunner, expand_matrix, load_spec

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
SPEC_PATH = REPO_ROOT / "examples" / "campaign_smoke.toml"
WORKERS = 8
EXPECTED_RUNS = 24
CAMPAIGN_DIR = RESULTS_DIR / "campaign"


def _sweep_specs():
    spec = load_spec(SPEC_PATH)
    specs = expand_matrix(spec.get("base", {}), spec.get("matrix", {}))
    assert len(specs) == EXPECTED_RUNS
    return specs


def _run(workers, out_dir, crash_once=(), resume=False):
    runner = CampaignRunner(
        out_dir, workers=workers, retries=1, resume=resume,
        name="smoke", progress=False, crash_once=crash_once,
    )
    t0 = time.perf_counter()
    result = runner.run(_sweep_specs())
    return runner, result, time.perf_counter() - t0


def test_campaign_bench_emit():
    shutil.rmtree(CAMPAIGN_DIR, ignore_errors=True)
    serial_dir = CAMPAIGN_DIR / "serial"
    parallel_dir = CAMPAIGN_DIR  # the dir CI uploads runs.jsonl from

    # -- serial reference ---------------------------------------------------
    _, serial, serial_wall = _run(1, serial_dir)
    assert len(serial.ok) == EXPECTED_RUNS and not serial.failed

    # -- 8 workers, one injected worker crash -------------------------------
    crash_id = serial.ok[0].run_id
    runner, parallel, parallel_wall = _run(
        WORKERS, parallel_dir, crash_once=[crash_id]
    )
    assert len(parallel.ok) == EXPECTED_RUNS and not parallel.failed
    crashed = [r for r in parallel.ok if r.run_id == crash_id]
    assert crashed[0].attempts == 2, "injected crash was not retried"
    assert runner.registry.counter("campaign.worker_crashes").value == 1

    # Shared-nothing determinism: parallel results == serial results.
    assert ({r.run_id: r.result for r in parallel.records}
            == {r.run_id: r.result for r in serial.records})

    # -- resume: everything already done ------------------------------------
    _, resumed, _ = _run(WORKERS, parallel_dir, resume=True)
    assert resumed.skipped == EXPECTED_RUNS
    assert not resumed.ok and not resumed.failed

    # -- throughput ---------------------------------------------------------
    speedup = serial_wall / parallel_wall if parallel_wall else 0.0
    cores = os.cpu_count() or 1
    if cores >= 4:
        assert speedup >= 3.0, (
            f"campaign fan-out too slow: {speedup:.2f}x at {WORKERS} workers "
            f"on {cores} cores (serial {serial_wall:.1f}s, "
            f"parallel {parallel_wall:.1f}s)"
        )
    else:
        # A single/dual-core box cannot express wall-clock parallelism;
        # just require that fan-out is not pathologically slower.
        assert speedup >= 0.25

    # -- deterministic aggregates for the CI gate ---------------------------
    results = [r.result for r in parallel.records]
    ratios = [r["delivery_ratio"] for r in results]
    summary = json.loads((parallel_dir / "summary.json").read_text())
    assert summary["campaign"]["runs_completed"] == EXPECTED_RUNS

    record_bench(
        "campaign",
        {
            "campaign.runs_ok": BenchMetric(
                value=len(parallel.ok), unit="runs", direction="higher"
            ),
            "campaign.runs_failed": BenchMetric(
                value=len(parallel.failed), unit="runs", direction="lower"
            ),
            "campaign.control_frames_total": BenchMetric(
                value=sum(r["control_frames"] for r in results),
                unit="frames", direction="lower",
            ),
            "campaign.control_bytes_total": BenchMetric(
                value=sum(r["control_bytes"] for r in results),
                unit="B", direction="lower",
            ),
            "campaign.delivery_ratio_mean": BenchMetric(
                value=sum(ratios) / len(ratios), unit="", direction="higher"
            ),
            "campaign.events_total": BenchMetric(
                value=sum(r["events_executed"] for r in results),
                unit="events", direction="lower",
            ),
            "campaign.speedup_8w": BenchMetric(
                value=speedup, unit="x", direction="info"
            ),
            "campaign.serial_wall_s": BenchMetric(
                value=serial_wall, unit="s", direction="info"
            ),
            "campaign.parallel_wall_s": BenchMetric(
                value=parallel_wall, unit="s", direction="info"
            ),
        },
        meta={
            "spec": str(SPEC_PATH.relative_to(REPO_ROOT)),
            "runs": EXPECTED_RUNS,
            "workers": WORKERS,
            "cores": cores,
        },
    )
