"""Table 3 — Reused generic components in MANET protocol compositions.

Regenerates the paper's component inventory from this repository's actual
sources: every generic component with its size in (non-blank) source lines
and the protocols that reuse it, followed by the generic/specific counts.

Paper shape: 12 generic components reused per protocol; generic components
outnumber protocol-specific ones by a factor of at least 2 for both OLSR
and DYMO (section 6.3).
"""

from __future__ import annotations

import pytest

from conftest import record
from repro.analysis.reuse import reuse_report
from repro.analysis.tables import render_table


@pytest.mark.benchmark(group="table3-reuse")
def test_table3_reused_components(benchmark):
    report = {}

    def measure():
        report.update(reuse_report())

    benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = [
        [row["component"], row["loc"], row["olsr"], row["dymo"]]
        for row in report["rows"]
        if row["generic"]
    ]
    rows.append(["--- protocol-specific ---", "", "", ""])
    rows.extend(
        [row["component"], row["loc"], row["olsr"], row["dymo"]]
        for row in report["rows"]
        if not row["generic"]
    )
    rows.append(["", "", "", ""])
    rows.append(
        [
            "Reused generic components",
            "",
            report["generic_count_olsr"],
            report["generic_count_dymo"],
        ]
    )
    rows.append(
        [
            "Protocol-specific components",
            "",
            report["specific_count_olsr"],
            report["specific_count_dymo"],
        ]
    )
    text = render_table(
        "Table 3 - Reused generic components (lines of code from this repo)",
        ["component", "LoC", "OLSR", "DYMO"],
        rows,
    )
    record("table3_reuse", text)

    # -- shape assertions ---------------------------------------------------
    # "In both cases, the generic components outnumber the specific ones
    # by a factor of at least 2."
    assert report["generic_count_olsr"] >= 2 * report["specific_count_olsr"]
    assert report["generic_count_dymo"] >= 2 * report["specific_count_dymo"]
    # at least the paper's 12 generic components are reused by each protocol
    assert report["generic_count_olsr"] >= 12
    assert report["generic_count_dymo"] >= 12
