"""Profiler smoke tier — attribution quality, determinism, overhead.

Emits ``results/BENCH_profile.json``, gated against
``benchmarks/baseline/BENCH_profile.json`` by ``tools/bench_check.py
--tolerance 0.10 --only profile``.  Three obligations:

* **Attribution is honest and high.**  On the 60-node OLSR grid the
  instrumented seams must account for the overwhelming majority of the
  measured wall time, with the remainder reported explicitly as
  ``(unattributed)`` — gated ``higher`` so a seam silently falling out
  of the profile (a refactor dropping its push/pop) fails the build.

* **Counts are deterministic.**  Two same-seed runs must produce
  identical deterministic snapshots; event totals and distinct-stack
  counts are gated as exact cross-machine quantities.

* **Profiling off costs nothing.**  The enabled/disabled wall-clock
  ratio is emitted info-grade (machine-dependent); the hard disabled-
  path guarantee is the tracemalloc guard in ``test_smoke_obs.py``.

The 200-node acceptance run (attribution >= 90% at scale) and the
4-shard merge-equivalence check ride the nightly tier, selected with
``PROFILE_SCALE=200``.
"""

from __future__ import annotations

import os
import time

import pytest

from conftest import record_bench
from repro.obs.bench import BenchMetric
from repro.obs.profile import attribution
from repro.sim import Simulation
from repro.tools.scenario import run_scenario, topology_model

import repro.protocols  # noqa: F401

NODES = 60
SEED = 7
DURATION = 30.0
WARMUP = 10.0


def _spec(**extra):
    return {
        "protocol": "olsr",
        "topology": "grid:10x6",
        "duration": DURATION,
        "warmup": WARMUP,
        "seed": SEED,
        "traffic": ["1:60", "6:55", "31:30"],
        **extra,
    }


def _profiled_grid(shape: str, duration: float):
    """Drive an OLSR grid directly so the raw profiler is in hand."""
    ids, edges, _positions = topology_model(f"grid:{shape}")
    sim = Simulation(seed=SEED)
    for nid in ids:
        sim.add_node(nid)
    sim.topology.apply(edges)
    profiler = sim.enable_profiling()
    from repro.core import ManetKit

    for nid in ids:
        kit = ManetKit(sim.node(nid))
        kit.load_protocol("olsr")
        kit.manager.add_route_observer(profiler.route_observer)
    profiler.begin_phase("traffic")
    sim.run(duration)
    profiler.end_phase()
    return profiler


def test_profile_bench_emit():
    # -- attribution + determinism on the 60-node grid ----------------------
    t0 = time.perf_counter()
    first = run_scenario(_spec(profile=True))
    wall_profiled = time.perf_counter() - t0

    second = run_scenario(_spec(profile=True))
    assert first["profile"] == second["profile"], (
        "profiler counts are not deterministic across same-seed runs"
    )

    t0 = time.perf_counter()
    plain = run_scenario(_spec())
    wall_plain = time.perf_counter() - t0
    for key in ("delivery_ratio", "control_frames", "events_executed"):
        assert first[key] == plain[key], (
            f"profiling changed scenario behaviour: {key}"
        )

    # The scenario library keeps the result deterministic (counts only),
    # so measure attribution on a directly driven profiled run.
    profiler = _profiled_grid("6x6", 20.0)
    attrib = attribution(profiler.snapshot())
    counts = first["profile"]

    metrics = {
        "profile.attributed_pct": BenchMetric(
            value=round(100.0 * attrib["attributed_fraction"], 2),
            unit="%", direction="higher",
        ),
        "profile.events_total": BenchMetric(
            value=counts["events"], unit="events", direction="lower"
        ),
        "profile.stacks_distinct": BenchMetric(
            value=counts["stacks"], unit="stacks", direction="lower"
        ),
        "profile.events_route_calc": BenchMetric(
            value=counts["by_subsystem"].get("route_calc", 0),
            unit="events", direction="lower",
        ),
        "profile.overhead_pct": BenchMetric(
            value=round(
                100.0 * (wall_profiled - wall_plain) / wall_plain, 2
            ) if wall_plain > 0 else 0.0,
            unit="%", direction="info",
        ),
        "profile.wall_s": BenchMetric(
            value=wall_profiled, unit="s", direction="info"
        ),
    }
    record_bench(
        "profile",
        metrics,
        meta={
            "nodes": NODES, "seed": SEED, "duration_s": DURATION,
            "warmup_s": WARMUP,
        },
    )

    # Sanity floors (the gate holds the precise values to baseline).
    assert attrib["attributed_fraction"] > 0.80
    assert counts["events"] > 0
    assert set(counts["by_subsystem"]) >= {
        "sched", "unit", "medium", "fm", "route_calc",
    }


def test_profile_acceptance_200():
    """Nightly tier: >=90% attribution at 200 nodes, sharded equivalence."""
    if os.environ.get("PROFILE_SCALE") != "200":
        pytest.skip(
            "200-node profiler acceptance not selected; set "
            "PROFILE_SCALE=200 (nightly CI / baseline refresh does)"
        )
    profiler = _profiled_grid("20x10", 60.0)
    snapshot = profiler.snapshot()
    attrib = attribution(snapshot)
    assert attrib["attributed_fraction"] >= 0.90, (
        f"attributed only {attrib['attributed_fraction']:.1%} of "
        f"{attrib['total_wall_s']:.2f}s "
        f"({attrib['unattributed_wall_s']:.2f}s unattributed)"
    )

    # 4-shard merged profile vs single process: every protocol-level
    # subsystem's counts match exactly; sched differs by construction
    # (cross-shard deliveries occupy their own dispatch slots).
    from repro.sim.sharded import run_sharded_scenario

    options = _spec(profile=True)
    single = run_scenario(dict(options))["profile"]
    sharded = run_sharded_scenario(dict(options), shards=4)["profile"]
    for subsystem in ("unit", "medium", "fm", "route_calc"):
        a = sharded["by_subsystem"].get(subsystem, 0)
        b = single["by_subsystem"].get(subsystem, 0)
        drift = abs(a - b) / max(b, 1)
        assert drift <= 0.01, (
            f"sharded {subsystem} counts drifted {drift:.2%} "
            f"(sharded {a}, single {b})"
        )
