"""Ablation — fish-eye TC scoping vs network diameter (paper section 5.1).

"The purpose of the fish-eye routing variant is to aid scalability when
networks grow large" — most TCs are scoped to the local neighbourhood, so
TC relay traffic stops growing with network diameter, "albeit at the cost
of sub-optimal (staler) routing to distant nodes".

This bench runs standard and fish-eye OLSR on chains of growing diameter
and reports TC-carrying control frames per node per second.
"""

from __future__ import annotations

import pytest

from conftest import HELLO_INTERVAL, TC_INTERVAL, record
from repro.analysis.tables import render_table
from repro.core import ManetKit
from repro.protocols.olsr.fisheye import apply_fisheye
from repro.sim import Simulation, topology

import repro.protocols  # noqa: F401

DIAMETERS = (4, 8, 12)
MEASURE_WINDOW = 20.0


def _tc_load(node_count, fisheye, seed=13):
    sim = Simulation(seed=seed)
    sim.add_nodes(node_count)
    ids = sim.node_ids()
    sim.topology.apply(topology.linear_chain(ids))
    kits = {}
    for node_id in ids:
        kit = ManetKit(sim.node(node_id))
        kit.load_protocol("mpr", hello_interval=HELLO_INTERVAL)
        kit.load_protocol("olsr", tc_interval=TC_INTERVAL)
        if fisheye:
            apply_fisheye(kit)
        kits[node_id] = kit
    sim.run(15.0)  # converge
    before = sim.stats.total_control_frames
    sim.run(MEASURE_WINDOW)
    frames = sim.stats.total_control_frames - before
    return frames / node_count / MEASURE_WINDOW


@pytest.mark.benchmark(group="ablation-fisheye")
def test_fisheye_overhead_vs_diameter(benchmark):
    results = {}

    def measure():
        for diameter in DIAMETERS:
            node_count = diameter + 1
            standard = _tc_load(node_count, fisheye=False)
            fisheye = _tc_load(node_count, fisheye=True)
            results[diameter] = (standard, fisheye)

    benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = [
        [
            f"diameter {diameter} ({diameter + 1} nodes)",
            f"{standard:.2f}",
            f"{fisheye:.2f}",
            f"{100.0 * (standard - fisheye) / standard:.0f}%",
        ]
        for diameter, (standard, fisheye) in results.items()
    ]
    text = render_table(
        "Ablation - control frames per node per second: standard vs "
        "fish-eye OLSR",
        ["chain", "standard", "fish-eye", "saving"],
        rows,
    )
    record("ablation_fisheye", text)

    # fish-eye reduces control load at every diameter...
    for diameter, (standard, fisheye) in results.items():
        assert fisheye < standard, diameter
    # ...and the absolute saving grows with diameter (scoped TCs stop
    # propagating network-wide)
    savings = {
        d: standard - fisheye for d, (standard, fisheye) in results.items()
    }
    assert savings[DIAMETERS[-1]] > savings[DIAMETERS[0]]