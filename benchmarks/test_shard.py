"""Sharded-run benchmark: the 200-node grid across 4 worker processes.

Selected with ``pytest benchmarks -k shard``.  Runs the scale gate's
200-node OLSR grid once single-process and once sharded across 4
workers (:mod:`repro.sim.sharded`), asserts the two runs are
result-equivalent (routes and delivery accounting — the conservative
synchronisation must be invisible), and emits ``BENCH_shard.json``.

Gated metrics are **deterministic** (frame/epoch/boundary counts and the
equivalence bit for a fixed seed) so CI holds them to a tight band —
``tools/bench_check.py --tolerance 0.10 --only shard`` — without flaking
on runner speed.  Wall-clock and speedup are emitted ``info``-grade; the
≥2x speedup claim is asserted only when the runner actually has ≥4 cores
(single-core CI containers time-slice the workers and would measure pure
IPC overhead, not parallelism).
"""

from __future__ import annotations

import argparse
import os
import time

from conftest import record_bench
from repro.obs.bench import BenchMetric
from repro.sim.sharded import run_sharded_scenario
from repro.tools.scenario import execute_scenario, resolve_options

NODES = 200
SEED = 7
WARMUP = 5.0
DURATION = 5.0
SHARDS = 4

#: Result keys that must match the single-process run exactly.
#: ``events_executed`` is excluded by design (cross-shard deliveries
#: occupy their own scheduler slot in the peer shard), and so are the
#: control-overhead counts: at this scale, simultaneous TC-flood arrivals
#: from *different* shards can process in a different tie order than
#: single-process, flipping a fraction of duplicate-forwarding decisions
#: (docs/sharding.md).  Routes and delivery accounting must still match
#: exactly — asserted below — and the overhead delta is bounded to 1%.
EQUIV_KEYS = (
    "nodes", "sim_time_s", "flows", "delivery_ratio",
    "latency_mean_s", "latency_p95_s", "truncated",
)


def test_shard_bench_emit():
    opts = dict(
        protocol="olsr", topology="grid", nodes=NODES, seed=SEED,
        warmup=WARMUP, duration=DURATION, traffic=[f"1:{NODES}"],
    )

    args = argparse.Namespace(**resolve_options(dict(opts), include_output=True))
    t0 = time.perf_counter()
    artifacts = execute_scenario(args)
    wall_single = time.perf_counter() - t0
    single = artifacts.result
    single_routes = {
        nid: {
            route.destination: route.next_hop
            for route in artifacts.sim.node(nid).kernel_table.routes()
        }
        for nid in artifacts.sim.node_ids()
    }

    t0 = time.perf_counter()
    sharded = run_sharded_scenario(dict(opts), shards=SHARDS)
    wall_sharded = time.perf_counter() - t0

    mismatches = [k for k in EQUIV_KEYS if sharded[k] != single[k]]
    assert not mismatches, f"sharded run diverged on {mismatches}"
    assert sharded["routes"] == single_routes, (
        "sharded run converged to different kernel routes"
    )
    frames_delta = abs(sharded["control_frames"] - single["control_frames"])
    assert frames_delta <= 0.01 * single["control_frames"], (
        f"control overhead diverged by {frames_delta} frames "
        f"(single {single['control_frames']})"
    )
    assert not sharded["truncated"]

    cores = os.cpu_count() or 1
    speedup = wall_single / wall_sharded if wall_sharded else 0.0
    if cores >= 4:
        # The actual parallelism claim — only meaningful with real cores.
        assert speedup >= 2.0, (
            f"4-shard run only {speedup:.2f}x faster on {cores} cores"
        )
    else:
        # Single/dual-core runner: just require the sharded path to be
        # functional, not competitive.
        assert speedup > 0.05

    sharding = sharded["sharding"]
    record_bench(
        "shard",
        {
            "shard.control_frames": BenchMetric(
                value=sharded["control_frames"], unit="frames",
                direction="lower",
            ),
            "shard.boundary_frames": BenchMetric(
                value=sharding["boundary_frames"], unit="frames",
                direction="lower",
            ),
            "shard.epochs": BenchMetric(
                value=sharding["epochs"], unit="barriers", direction="lower"
            ),
            "shard.delivered": BenchMetric(
                value=sharded["flows"][0]["delivered"], unit="packets",
                direction="higher",
            ),
            # Regression tripwire: 1.0 iff every EQUIV_KEY matched the
            # single-process run (the assert above fails first, but the
            # baseline gate catches it even under ``pytest -x`` skips).
            "shard.equivalent": BenchMetric(
                value=0.0 if mismatches else 1.0, unit="", direction="higher"
            ),
            "shard.wall_single_s": BenchMetric(
                value=wall_single, unit="s", direction="info"
            ),
            "shard.wall_sharded_s": BenchMetric(
                value=wall_sharded, unit="s", direction="info"
            ),
            "shard.speedup": BenchMetric(
                value=speedup, unit="x", direction="info"
            ),
        },
        meta={
            "nodes": NODES, "seed": SEED, "shards": SHARDS,
            "warmup_s": WARMUP, "duration_s": DURATION, "cores": cores,
        },
    )
