"""Table 1 — Comparative Performance of MANETKit Protocols.

Two metrics, four implementations (paper section 6.1):

* **Time to Process Message** — wall-clock time to take one protocol
  message from receipt to completion (an OLSR TC / a DYMO RREQ) through
  each implementation's full receive path.  Micro metric for the overhead
  of MANETKit's componentisation (pytest-benchmark).
* **Route Establishment Delay** — simulated time for (OLSR) a newly
  arrived node at the end of the 5-node chain to compute a fully
  populated routing table, and (DYMO) a route discovery across the chain.
  Macro metric for control-plane performance.

Paper reference (ms):
    Time to Process Message:   olsrd 0.045 | MKit-OLSR 0.096 | DYMOUM 0.135 | MKit-DYMO 0.122
    Route Establishment Delay: olsrd 995   | MKit-OLSR 1026  | DYMOUM 37    | MKit-DYMO 27.3

Expected *shape*: the monolith wins the micro metric for OLSR (less
machinery on the path), while MANETKit-DYMO beats DYMOUM on both metrics
(DYMOUM's libipq packet path).
"""

from __future__ import annotations

import statistics
import time

import pytest

from conftest import (
    HELLO_INTERVAL,
    TC_INTERVAL,
    build_dymoum_chain,
    build_mkit_dymo_chain,
    build_mkit_olsr_chain,
    build_olsrd_chain,
    record,
)
from repro.analysis.tables import render_table
from repro.core import ManetKit
from repro.monolithic import DymoumDaemon, OlsrdDaemon
from repro.packetbb.address import Address, AddressBlock
from repro.packetbb.message import Message, MsgType
from repro.packetbb.packet import Packet, encode
from repro.packetbb.tlv import TLV, TLVBlock
from repro.protocols.common import TlvType
from repro.protocols.dymo.messages import RREQ, build_re
from repro.sim import Simulation

POOL = 4096

_table1_rows = {}


# ---------------------------------------------------------------------------
# Payload pools: realistic, non-duplicate messages
# ---------------------------------------------------------------------------

def tc_payload_pool(originator: int, advertised: int) -> list:
    payloads = []
    for seq in range(1, POOL + 1):
        message = Message(
            MsgType.TC,
            originator=Address.from_node_id(originator),
            hop_limit=255,
            hop_count=1,
            seqnum=seq & 0xFFFF,
            tlv_block=TLVBlock([TLV.of_int(TlvType.ANSN, seq & 0xFFFF, width=2)]),
            address_blocks=[AddressBlock([Address.from_node_id(advertised)])],
        )
        payloads.append(encode(Packet([message], seqnum=seq & 0xFFFF)))
    return payloads


def rreq_payload_pool(originator: int, target: int) -> list:
    payloads = []
    for seq in range(1, POOL + 1):
        message = build_re(
            RREQ,
            target=target,
            path=[(originator, seq & 0xFFFF or 1)],
            hop_limit=10,
        )
        payloads.append(encode(Packet([message], seqnum=seq & 0xFFFF)))
    return payloads


def _isolated_pair(builder):
    """Two registered nodes with *no* links: processing without relaying
    side-effects accumulating in the event heap."""
    sim = Simulation(seed=0)
    a = sim.add_node()
    b = sim.add_node()
    return sim, a, b


# ---------------------------------------------------------------------------
# Time to Process Message (micro, wall clock)
# ---------------------------------------------------------------------------

@pytest.mark.benchmark(group="table1-time-to-process")
def test_time_to_process_tc_mkit_olsr(benchmark):
    sim, _a, b = _isolated_pair(None)
    kit = ManetKit(b)
    kit.load_protocol("mpr", hello_interval=HELLO_INTERVAL)
    kit.load_protocol("olsr", tc_interval=TC_INTERVAL)
    pool = tc_payload_pool(_a.node_id, 77)
    state = {"i": 0}

    def process():
        payload = pool[state["i"] % POOL]
        state["i"] += 1
        kit.system.sys_forward._on_wire(payload, _a.node_id)

    result = benchmark(process)
    _table1_rows["MKit-OLSR-msg"] = benchmark.stats.stats.mean * 1000


@pytest.mark.benchmark(group="table1-time-to-process")
def test_time_to_process_tc_olsrd(benchmark):
    sim, _a, b = _isolated_pair(None)
    daemon = OlsrdDaemon(b, hello_interval=HELLO_INTERVAL, tc_interval=TC_INTERVAL)
    daemon.start()
    pool = tc_payload_pool(_a.node_id, 77)
    state = {"i": 0}

    def process():
        payload = pool[state["i"] % POOL]
        state["i"] += 1
        daemon.on_wire(payload, _a.node_id)

    benchmark(process)
    _table1_rows["olsrd-msg"] = benchmark.stats.stats.mean * 1000


@pytest.mark.benchmark(group="table1-time-to-process")
def test_time_to_process_rreq_mkit_dymo(benchmark):
    sim, _a, b = _isolated_pair(None)
    kit = ManetKit(b)
    kit.load_protocol("dymo")
    pool = rreq_payload_pool(_a.node_id, b.node_id)
    state = {"i": 0}

    def process():
        payload = pool[state["i"] % POOL]
        state["i"] += 1
        kit.system.sys_forward._on_wire(payload, _a.node_id)

    benchmark(process)
    _table1_rows["MKit-DYMO-msg"] = benchmark.stats.stats.mean * 1000


@pytest.mark.benchmark(group="table1-time-to-process")
def test_time_to_process_rreq_dymoum(benchmark):
    sim, _a, b = _isolated_pair(None)
    daemon = DymoumDaemon(b, processing_delay=0.0)  # measure CPU path only
    daemon.start()
    pool = rreq_payload_pool(_a.node_id, b.node_id)
    state = {"i": 0}

    def process():
        payload = pool[state["i"] % POOL]
        state["i"] += 1
        daemon.on_wire(payload, _a.node_id)

    benchmark(process)
    _table1_rows["DYMOUM-msg"] = benchmark.stats.stats.mean * 1000


# ---------------------------------------------------------------------------
# Route Establishment Delay (macro, simulated time)
# ---------------------------------------------------------------------------

SEEDS = (1, 2, 3, 4, 5)


def olsr_establishment_mkit(seed: int) -> float:
    sim, ids, kits = build_mkit_olsr_chain(seed=seed)
    sim.run(15.0)
    new = sim.add_node().node_id
    kit = ManetKit(sim.node(new))
    kit.load_protocol("mpr", hello_interval=HELLO_INTERVAL)
    kit.load_protocol("olsr", tc_interval=TC_INTERVAL)
    sim.topology.add_edge(ids[-1], new)
    start = sim.now
    while sim.now - start < 60.0:
        sim.run(0.01)
        if set(kit.protocol("olsr").routing_table()) >= set(ids):
            break
    return sim.now - start


def olsr_establishment_olsrd(seed: int) -> float:
    sim, ids, daemons = build_olsrd_chain(seed=seed)
    sim.run(15.0)
    new = sim.add_node().node_id
    daemon = OlsrdDaemon(
        sim.node(new), hello_interval=HELLO_INTERVAL, tc_interval=TC_INTERVAL
    )
    daemon.start()
    sim.topology.add_edge(ids[-1], new)
    start = sim.now
    while sim.now - start < 60.0:
        sim.run(0.01)
        if set(daemon.routing_table()) >= set(ids):
            break
    return sim.now - start


def dymo_establishment(builder, seed: int) -> float:
    sim, ids, _impls = builder(seed=seed)
    sim.run(5.0)
    delivered = []
    sim.node(ids[-1]).add_app_receiver(delivered.append)
    start = sim.now
    sim.node(ids[0]).send_data(ids[-1], b"probe")
    while sim.now - start < 10.0 and not delivered:
        sim.run(0.0005)
    assert delivered, f"discovery failed (seed {seed})"
    return sim.now - start


@pytest.mark.benchmark(group="table1-route-establishment")
def test_route_establishment_delay_table(benchmark):
    means_ms = {}

    def run_all():
        measurements = {
            "olsrd": [olsr_establishment_olsrd(s) for s in SEEDS],
            "MKit-OLSR": [olsr_establishment_mkit(s) for s in SEEDS],
            "DYMOUM-0.3": [
                dymo_establishment(build_dymoum_chain, s) for s in SEEDS
            ],
            "MKit-DYMO": [
                dymo_establishment(build_mkit_dymo_chain, s) for s in SEEDS
            ],
        }
        means_ms.update(
            {
                name: statistics.mean(values) * 1000
                for name, values in measurements.items()
            }
        )

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    paper = {
        "olsrd": 995.0,
        "MKit-OLSR": 1026.0,
        "DYMOUM-0.3": 37.0,
        "MKit-DYMO": 27.3,
    }
    rows = [
        [name, f"{means_ms[name]:.1f}", f"{paper[name]:.1f}"]
        for name in ("olsrd", "MKit-OLSR", "DYMOUM-0.3", "MKit-DYMO")
    ]
    text = render_table(
        "Table 1b - Route Establishment Delay (ms), mean over "
        f"{len(SEEDS)} seeds (paper values from a 3.2 GHz C testbed)",
        ["implementation", "measured", "paper"],
        rows,
    )
    micro = (
        "\n".join(
            f"  {name}: {_table1_rows[name]:.4f} ms"
            for name in sorted(_table1_rows)
        )
        if _table1_rows
        else "  (micro rows appear when the whole file runs together)"
    )
    note = (
        "\nNote: in this reproduction the micro metric shows MKit-DYMO "
        "costing more CPU per message than DYMOUM, inverting the paper's "
        "micro result; DYMOUM's real penalty was its libipq kernel/user "
        "handoff, which our substrate charges in simulated time -- where "
        "MKit-DYMO wins, as in the paper (see EXPERIMENTS.md)."
    )
    record(
        "table1_performance",
        text + "\n\nTime to Process Message (measured, ms):\n" + micro + note,
    )

    # -- shape assertions (who wins, roughly by how much) -------------------
    # DYMO establishes routes orders of magnitude faster than OLSR
    assert means_ms["MKit-DYMO"] < means_ms["MKit-OLSR"] / 5
    # MANETKit-DYMO beats DYMOUM (its libipq path costs ~1.2 ms/hop)
    assert means_ms["MKit-DYMO"] < means_ms["DYMOUM-0.3"]
    # OLSR implementations are comparable (within ~25% of each other)
    ratio = means_ms["MKit-OLSR"] / means_ms["olsrd"]
    assert 0.7 < ratio < 1.4, ratio
    # both DYMO numbers are tens of milliseconds, like the paper's testbed
    assert 5 < means_ms["MKit-DYMO"] < 100
    assert 5 < means_ms["DYMOUM-0.3"] < 100
    # micro shape: the monolithic olsrd's shorter path beats the framework
    if "olsrd-msg" in _table1_rows:
        assert _table1_rows["olsrd-msg"] < _table1_rows["MKit-OLSR-msg"]
