"""Micro benchmarks — the cost of dynamic reconfiguration itself.

The paper's goal 2 is that the framework's flexibility must not cost
performance.  Table 1 measured the steady-state path; these benchmarks
measure the *reconfiguration operations*: declarative tuple rewiring,
component hot-swap under the critical section, variant application, and a
full protocol switch with state carry-over.  All are sub-millisecond —
reconfiguration is cheap enough to drive from a per-second policy loop.
"""

from __future__ import annotations

import itertools

import pytest

from conftest import HELLO_INTERVAL, TC_INTERVAL
from repro.core import ManetKit
from repro.events.registry import EventTuple
from repro.protocols.dymo.state import DymoState
from repro.protocols.mpr.calculator import MprCalculator
from repro.protocols.olsr.power_aware import PowerAwareMprCalculator
from repro.sim import Simulation, topology

import repro.protocols  # noqa: F401


def _converged_olsr_kit():
    sim = Simulation(seed=0)
    sim.add_nodes(3)
    ids = sim.node_ids()
    sim.topology.apply(topology.linear_chain(ids))
    kits = {}
    for node_id in ids:
        kit = ManetKit(sim.node(node_id))
        kit.load_protocol("mpr", hello_interval=HELLO_INTERVAL)
        kit.load_protocol("olsr", tc_interval=TC_INTERVAL)
        kits[node_id] = kit
    sim.run(10.0)
    return sim, ids, kits


@pytest.mark.benchmark(group="reconfig-latency")
def test_tuple_rewire_latency(benchmark):
    """Method 1 of section 4.5: declarative tuple update + auto rewire."""
    sim, ids, kits = _converged_olsr_kit()
    kit = kits[ids[0]]
    olsr = kit.protocol("olsr")
    base = EventTuple(["TC_IN", "NHOOD_CHANGE", "MPR_CHANGE"], ["TC_OUT"])
    extended = base.with_required("POWER_STATUS")
    toggle = itertools.cycle((extended, base))

    def rewire():
        olsr.set_event_tuple(next(toggle))

    benchmark(rewire)
    assert kit.manager.rewires > 2


@pytest.mark.benchmark(group="reconfig-latency")
def test_component_hot_swap_latency(benchmark):
    """Method 2: architecture-meta-model replacement under the CS."""
    sim, ids, kits = _converged_olsr_kit()
    kit = kits[ids[0]]
    swap = itertools.cycle((PowerAwareMprCalculator, MprCalculator))

    def hot_swap():
        kit.reconfig.replace_component(
            "mpr", "mpr-calculator", next(swap)()
        )

    benchmark(hot_swap)
    mpr = kit.protocol("mpr")
    assert mpr.control.has_child("mpr-calculator")


@pytest.mark.benchmark(group="reconfig-latency")
def test_protocol_switch_latency(benchmark):
    """Full switch_protocol with S-element carry-over."""
    from repro.protocols.dymo.protocol import DymoCF

    sim = Simulation(seed=0)
    node = sim.add_node()
    kit = ManetKit(node)
    kit.load_protocol("dymo")

    def switch():
        # swap the whole running instance for a fresh one, keeping state
        kit.reconfig.switch_protocol("dymo", DymoCF(kit.ontology, name="dymo"))

    benchmark(switch)
    assert isinstance(kit.protocol("dymo").dymo_state, DymoState)


@pytest.mark.benchmark(group="reconfig-latency")
def test_variant_application_latency(benchmark):
    """apply/remove of the multipath variant (3 component replacements)."""
    from repro.protocols.dymo.multipath import apply_multipath, remove_multipath

    sim = Simulation(seed=0)
    kit = ManetKit(sim.add_node())
    kit.load_protocol("dymo")
    state = {"multipath": False}

    def toggle_variant():
        if state["multipath"]:
            remove_multipath(kit)
        else:
            apply_multipath(kit)
        state["multipath"] = not state["multipath"]

    benchmark(toggle_variant)