"""PHY-model smoke tier — the `802.11b/g/p` gate plus the ideal fast path.

Two obligations, per the medium-model contract (docs/phy.md):

* **Profiles are real and deterministic.**  The 60-node grid under the
  fault battery (loss burst, link break/restore, corruption window,
  crash/restart) must produce *distinct* delivery ratios per link
  profile — the whole point of the PHY axis is that results depend on
  the parameter set — and the same seed + profile must reproduce the
  full result dict exactly.  The ratios are gated against
  ``benchmarks/baseline/BENCH_phy.json`` (``tools/bench_check.py
  --tolerance 0.10 --only phy``); being deterministic, they cannot
  drift on runner speed.

* **The ideal fast path stayed fast and exact.**  The scale workload
  (200-node grid, RFC-default OLSR, 60 sim-seconds — the exact cell
  pinned by ``BENCH_scale.json``) re-run under the default medium must
  land within 5% of the committed baseline's deterministic metrics
  (event/frame/byte counts; byte-identical behaviour makes them exactly
  equal).  Wall-clock is emitted info-grade only, never gated.
"""

from __future__ import annotations

import json
import pathlib
import time

from conftest import record_bench
from repro.obs.bench import BenchMetric
from repro.tools.scenario import run_scenario

from test_scale import DURATION as SCALE_DURATION
from test_scale import NODES as SCALE_NODES
from test_scale import _run_olsr_grid

import repro.protocols  # noqa: F401

BASELINE_SCALE = (
    pathlib.Path(__file__).parent / "baseline" / "BENCH_scale.json"
)

NODES = 60
SEED = 7
DURATION = 30.0
WARMUP = 10.0
PROFILES = ("802.11b", "802.11g", "802.11p")

#: The fault battery: a Gilbert-Elliott-style loss burst on a central
#: link (mutates LinkProperties.loss, which the PHY folds into its
#: noise floor), a break/restore, a corruption window (composes AFTER
#: the PHY verdict) and a crash/restart — all relative to warm-up.
FAULT_BATTERY = [
    "burst:5:25-26:4",
    "break:8:35-36",
    "restore:14:35-36",
    "corrupt:10:5:0.3",
    "crash:12:30",
    "restart:18:30",
]


def _phy_spec(phy):
    return {
        "protocol": "olsr",
        "topology": "grid:10x6",
        "duration": DURATION,
        "warmup": WARMUP,
        "seed": SEED,
        "phy": phy,
        "traffic": ["1:60", "6:55", "31:30"],
        "fault": list(FAULT_BATTERY),
    }


def _delivery_ratio(result):
    sent = sum(f["sent"] for f in result["flows"])
    delivered = sum(f["delivered"] for f in result["flows"])
    return delivered / sent if sent else 0.0


def test_phy_bench_emit():
    metrics = {}
    ratios = {}

    # -- the profile matrix under the fault battery -------------------------
    for phy in PROFILES:
        key = phy.replace("802.11", "dot11")
        t0 = time.perf_counter()
        result = run_scenario(_phy_spec(phy))
        wall = time.perf_counter() - t0
        ratio = _delivery_ratio(result)
        ratios[phy] = ratio
        collected = result["metrics"]["collected"]
        metrics.update({
            f"phy.{key}.delivery_ratio": BenchMetric(
                value=ratio, unit="", direction="higher"
            ),
            f"phy.{key}.transmissions": BenchMetric(
                value=collected["phy.transmissions"], unit="frames",
                direction="lower",
            ),
            f"phy.{key}.collisions": BenchMetric(
                value=collected["phy.collisions"], unit="frames",
                direction="info",
            ),
            f"phy.{key}.sinr_loss": BenchMetric(
                value=collected["phy.sinr_loss"], unit="frames",
                direction="info",
            ),
            f"phy.{key}.deferrals": BenchMetric(
                value=collected["phy.deferrals"], unit="", direction="info"
            ),
            f"phy.{key}.wall_s": BenchMetric(
                value=wall, unit="s", direction="info"
            ),
        })

    # Seed-determinism: one profile re-run must reproduce everything.
    assert run_scenario(_phy_spec("802.11g")) == run_scenario(
        _phy_spec("802.11g")
    ), "802.11g run is not seed-deterministic"

    # Profiles must be measurably distinct — pairwise, not just jitter.
    values = sorted(ratios.items())
    for (phy_a, a), (phy_b, b) in zip(values, values[1:]):
        assert abs(a - b) > 0.005, (
            f"profiles {phy_a} and {phy_b} are indistinguishable "
            f"({a:.4f} vs {b:.4f})"
        )
    # The calibrated ordering the link-availability literature reports:
    # robust half-clocked 802.11p on top, high-rate OFDM 802.11g at the
    # bottom.
    assert ratios["802.11p"] > ratios["802.11b"] > ratios["802.11g"]

    # -- the ideal fast path vs the committed scale baseline ----------------
    sim, ids, executed, wall = _run_olsr_grid(SCALE_NODES, SCALE_DURATION)
    baseline = json.loads(BASELINE_SCALE.read_text())["metrics"]
    observed = {
        "scale.olsr.sched_events": float(executed),
        "scale.olsr.control_frames": float(sim.stats.total_control_frames),
        "scale.olsr.control_bytes": float(sim.stats.total_control_bytes),
    }
    for name, got in observed.items():
        want = baseline[name]["value"]
        drift = abs(got - want) / want
        assert drift < 0.05, (
            f"ideal fast path regressed: {name} drifted {drift:.2%} "
            f"(baseline {want}, got {got})"
        )
    metrics.update({
        "phy.ideal.sched_events": BenchMetric(
            value=executed, unit="events", direction="lower"
        ),
        "phy.ideal.wall_s": BenchMetric(value=wall, unit="s", direction="info"),
    })

    record_bench(
        "phy",
        metrics,
        meta={
            "nodes": NODES, "seed": SEED, "duration_s": DURATION,
            "warmup_s": WARMUP, "profiles": list(PROFILES),
            "faults": list(FAULT_BATTERY),
            "scale_nodes": SCALE_NODES, "scale_duration_s": SCALE_DURATION,
        },
    )
