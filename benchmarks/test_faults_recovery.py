"""Fault-recovery benchmark — gated recovery latency per protocol.

Selected with ``pytest benchmarks -k faults``; emits
``results/BENCH_faults.json`` through the ``repro.obs`` bench emitter.

Each protocol runs the same scripted adversity on the paper's 5-node
chain: crash the middle relay at t=1 s, restart it at t=8 s, partition
the network at t=25 s and heal it at t=35 s, with CBR traffic flowing
end to end throughout.  The convergence oracle (full mode for proactive
OLSR, sound mode with the traffic pair for reactive DYMO/AODV) measures
how long each disruption takes to recover from, in **simulated seconds**
— deterministic for a fixed seed, so the metrics are gated at the normal
25% band by ``tools/bench_check.py`` against ``benchmarks/baseline/``.
"""

from __future__ import annotations

from conftest import HELLO_INTERVAL, TC_INTERVAL, record_bench
from repro.analysis.oracle import ConvergenceOracle, RecoveryTracker
from repro.core import ManetKit
from repro.obs.bench import BenchMetric
from repro.sim import FaultPlan, Simulation, topology

import repro.protocols  # noqa: F401

PROTOCOLS = {
    "olsr": {"warmup": 15.0, "mode": "full"},
    "dymo": {"warmup": 6.0, "mode": "sound"},
    "aodv": {"warmup": 6.0, "mode": "sound"},
}

CRASH_AT, RESTART_AT = 1.0, 8.0
PARTITION_AT, HEAL_AT = 25.0, 35.0
RUN_FOR = 50.0


def _build(protocol: str, seed: int = 1):
    sim = Simulation(seed=seed)
    sim.add_nodes(5)
    ids = sim.node_ids()
    sim.topology.apply(topology.linear_chain(ids))
    kits = {}
    for node_id in ids:
        kit = ManetKit(sim.node(node_id))
        if protocol == "olsr":
            kit.load_protocol("mpr", hello_interval=HELLO_INTERVAL)
            kit.load_protocol("olsr", tc_interval=TC_INTERVAL)
        else:
            kit.load_protocol(protocol)
        kits[node_id] = kit
    return sim, ids, kits


def _run_battery(protocol: str):
    config = PROTOCOLS[protocol]
    sim, ids, kits = _build(protocol)
    relay = ids[2]
    sim.run(config["warmup"])

    plan = (
        FaultPlan(seed=99)
        .crash(CRASH_AT, relay)
        .restart(RESTART_AT, relay)
        .partition(PARTITION_AT, ids[:2], ids[2:])
        .heal(HEAL_AT)
    )
    injector = sim.install_faults(plan, kits=kits)
    pair = (ids[0], ids[-1])
    oracle = ConvergenceOracle(sim, mode=config["mode"])
    tracker = RecoveryTracker(
        sim, oracle, protocol=protocol, poll=0.25, timeout=15.0,
        pairs=None if config["mode"] == "full" else [pair],
    ).attach(injector)

    delivered = []
    sim.node(pair[1]).add_app_receiver(delivered.append)
    flow = sim.start_cbr(pair[0], pair[1], interval=0.5)
    sim.run(RUN_FOR)
    flow.stop()
    sim.run(1.0)

    assert not tracker.timeouts, f"{protocol}: no recovery from {tracker.timeouts}"
    recovered = dict(tracker.recoveries)
    assert "crash" in recovered and "partition" in recovered, (
        f"{protocol}: measured {tracker.recoveries}"
    )
    final = oracle.check(
        pairs=None if config["mode"] == "full" else [pair]
    )
    assert final.converged, f"{protocol}: {final.summary()}"
    return {
        "crash_recovery_s": recovered["crash"],
        "partition_recovery_s": recovered["partition"],
        "delivery_ratio": len(delivered) / max(flow.sent, 1),
    }


def test_faults_bench_emit():
    metrics = {}
    for protocol in sorted(PROTOCOLS):
        result = _run_battery(protocol)
        metrics[f"{protocol}.crash.recovery_sim_s"] = BenchMetric(
            value=result["crash_recovery_s"], unit="s", direction="lower"
        )
        metrics[f"{protocol}.partition.recovery_sim_s"] = BenchMetric(
            value=result["partition_recovery_s"], unit="s", direction="lower"
        )
        metrics[f"{protocol}.delivery_ratio"] = BenchMetric(
            value=result["delivery_ratio"], unit="", direction="higher"
        )
        metrics[f"{protocol}.reconverged"] = BenchMetric(
            value=1.0, unit="", direction="higher"
        )
    record_bench(
        "faults",
        metrics,
        meta={
            "plan": {
                "crash_at": CRASH_AT, "restart_at": RESTART_AT,
                "partition_at": PARTITION_AT, "heal_at": HEAL_AT,
            },
            "topology": "chain:5",
            "seed": 1,
        },
    )
