"""Ablation — MPR flooding vs blind flooding vs network density.

"Multipoint Relaying is good at reducing control overhead in denser
networks" (paper section 2); DYMO's optimised-flooding variant trades
extra state for exactly that saving (section 5.2).  This bench floods one
route discovery through increasingly dense networks and counts control
transmissions under blind and MPR-optimised flooding.
"""

from __future__ import annotations

import pytest

from conftest import record
from repro.analysis.tables import render_table
from repro.core import ManetKit
from repro.protocols.dymo.flooding import apply_optimised_flooding
from repro.sim import Simulation, topology

import repro.protocols  # noqa: F401

DENSITIES = {
    "sparse (chain of 9)": lambda ids: topology.linear_chain(ids),
    "medium (3x3 grid)": lambda ids: topology.grid(3, 3, first_id=ids[0]),
    "dense (3x3 grid + diagonals)": lambda ids: topology.grid(
        3, 3, first_id=ids[0]
    ) + [
        (ids[0], ids[4]), (ids[1], ids[3]), (ids[1], ids[5]),
        (ids[2], ids[4]), (ids[3], ids[7]), (ids[4], ids[6]),
        (ids[4], ids[8]), (ids[5], ids[7]),
    ],
}


def _discovery_burst(edges_fn, optimised, seed=11):
    sim = Simulation(seed=seed)
    sim.add_nodes(9)
    ids = sim.node_ids()
    sim.topology.apply(edges_fn(ids))
    kits = {}
    for node_id in ids:
        kit = ManetKit(sim.node(node_id))
        kit.load_protocol("dymo")
        if optimised:
            apply_optimised_flooding(kit)
        kits[node_id] = kit
    sim.run(10.0)  # neighbour sensing / MPR selection converges
    before = sim.stats.total_control_frames
    delivered = []
    sim.node(ids[-1]).add_app_receiver(delivered.append)
    sim.node(ids[0]).send_data(ids[-1], b"probe")
    sim.run(1.5)
    assert delivered, "discovery failed"
    return sim.stats.total_control_frames - before


@pytest.mark.benchmark(group="ablation-flooding")
def test_mpr_vs_blind_flooding_overhead(benchmark):
    results = {}

    def measure():
        for label, edges_fn in DENSITIES.items():
            blind = _discovery_burst(edges_fn, optimised=False)
            optimised = _discovery_burst(edges_fn, optimised=True)
            results[label] = (blind, optimised)

    benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = [
        [
            label,
            blind,
            optimised,
            f"{100.0 * (blind - optimised) / blind:.0f}%",
        ]
        for label, (blind, optimised) in results.items()
    ]
    text = render_table(
        "Ablation - control frames per route discovery: blind vs MPR flooding",
        ["topology", "blind", "MPR", "saving"],
        rows,
    )
    record("ablation_flooding", text)

    # in the dense network, MPR flooding must save transmissions
    dense_blind, dense_mpr = results["dense (3x3 grid + diagonals)"]
    assert dense_mpr < dense_blind
    # the saving grows with density (sparse chain: nothing to suppress)
    sparse_blind, sparse_mpr = results["sparse (chain of 9)"]
    sparse_saving = (sparse_blind - sparse_mpr) / sparse_blind
    dense_saving = (dense_blind - dense_mpr) / dense_blind
    assert dense_saving >= sparse_saving