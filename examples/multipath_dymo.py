#!/usr/bin/env python3
"""Multipath DYMO: failover without a new route discovery (paper section 5.2).

A running DYMO deployment is reconfigured to the multipath variant by
replacing exactly three components (the S element, the RE handler and the
RERR handler).  A single route discovery then computes multiple
link-disjoint paths; when the primary path breaks, traffic fails over to
the alternative with *no* new network-wide RREQ flood.

Run:  python examples/multipath_dymo.py
"""

from repro.core import ManetKit
from repro.protocols.dymo.multipath import apply_multipath
from repro.sim import Simulation, topology

import repro.protocols  # noqa: F401

#: 1 -> 4 has two link-disjoint paths: 1-2-3-4 and 1-5-6-4.
EDGES = [(1, 2), (2, 3), (3, 4), (1, 5), (5, 6), (6, 4)]


def main() -> None:
    sim = Simulation(seed=3)
    for node_id in range(1, 7):
        sim.add_node(node_id=node_id)
    sim.topology.apply(EDGES)
    kits = {}
    for node_id in sim.node_ids():
        kit = ManetKit(sim.node(node_id))
        kit.load_protocol("dymo", route_timeout=60.0)
        kits[node_id] = kit
    sim.run(5.0)

    print("reconfiguring every node to multipath DYMO "
          "(3 component replacements)...")
    for kit in kits.values():
        apply_multipath(kit)

    # -- one discovery, several paths ----------------------------------------
    delivered = []
    sim.node(4).add_app_receiver(delivered.append)
    sim.node(1).send_data(4, b"probe")
    sim.run(1.0)
    state = kits[1].protocol("dymo").dymo_state
    print(f"\none discovery, {len(delivered)} delivery; paths learned at "
          "node 1 toward node 4:")
    for record in state.alternatives(4):
        print(f"  via {record.next_hop}, {record.hop_count} hops, "
              f"edges {sorted(record.edges)}")
    discoveries_before = state.discoveries_initiated

    # -- break the primary path -----------------------------------------------
    primary = sim.node(1).kernel_table.lookup(4).next_hop
    print(f"\nbreaking the primary path's first link 1-{primary}...")
    sim.topology.break_edge(1, primary)
    sim.run(5.0)  # neighbour detection notices the break

    new_hop = sim.node(1).kernel_table.lookup(4).next_hop
    print(f"kernel route switched to the alternative next hop: {new_hop}")

    sim.node(1).send_data(4, b"after failover")
    sim.run(1.0)
    print(f"packets delivered in total: {len(delivered)}")
    print(f"route discoveries initiated at node 1: "
          f"{state.discoveries_initiated} (was {discoveries_before} — "
          "failover needed no new flood)")
    print(f"path switches recorded: {state.path_switches}")


if __name__ == "__main__":
    main()
