#!/usr/bin/env python3
"""A ZRP-style hybrid assembled from existing CFs (paper §2, §7).

Hybrid protocols "combine aspects of both proactive and reactive types —
e.g. by employing proactive routing within scoped domains and reactive
routing across domains" (the ZRP reference in the paper's related work).
MANETKit's composition model makes the hybrid a *configuration* rather
than a new protocol: OLSR+MPR scoped by a constant-TTL fish-eye unit form
the intrazone plane; DYMO (flooding through the shared MPR CF) covers the
interzone; the kernel table's NO_ROUTE hook is the seam between them.

Run:  python examples/zrp_hybrid.py
"""

from repro.core import ManetKit
from repro.protocols.hybrid import deploy_zrp
from repro.sim import Simulation, topology

import repro.protocols  # noqa: F401


def timed_send(sim, src, dst, timeout=3.0):
    got = []
    sim.node(dst).add_app_receiver(got.append)
    start = sim.now
    sim.node(src).send_data(dst, b"x")
    while sim.now - start < timeout and not got:
        sim.run(0.005)
    return (sim.now - start) * 1000 if got else None


def main() -> None:
    sim = Simulation(seed=4)
    sim.add_nodes(10)
    ids = sim.node_ids()
    sim.topology.apply(topology.linear_chain(ids))

    hybrids = {}
    for node_id in ids:
        hybrids[node_id] = deploy_zrp(ManetKit(sim.node(node_id)),
                                      zone_radius=2)
    sim.run(20.0)

    hybrid = hybrids[ids[0]]
    kit = hybrid.deployment
    print("units on node 1:", [u.name for u in kit.units()])
    zone = sorted(kit.protocol("olsr").routing_table())
    print(f"proactive zone of node 1 (radius 2 + link-state spillover): "
          f"{zone}")

    near, far = ids[2], ids[-1]
    print(f"\nsending to node {near} (in zone, proactive route ready)...")
    latency = timed_send(sim, ids[0], near)
    stats = hybrid.stats()
    print(f"  delivered in {latency:.1f} ms, "
          f"interzone discoveries so far: {stats.interzone_discoveries}")

    print(f"\nsending to node {far} (out of zone, reactive discovery)...")
    latency = timed_send(sim, ids[0], far)
    stats = hybrid.stats()
    print(f"  delivered in {latency:.1f} ms, "
          f"interzone discoveries so far: {stats.interzone_discoveries}")
    sim.run(2.0)  # the next TCs let OLSR reclaim its intrazone entries
    protos = sorted(
        {route.proto for route in sim.node(ids[0]).kernel_table.routes()}
    )
    print(f"  kernel routes now owned by: {protos} "
          "(both planes coexist via proto-tagged routes)")

    print("\ngrowing the zone radius to 4 at runtime...")
    for h in hybrids.values():
        h.set_zone_radius(4)
    sim.run(20.0)
    print(f"proactive zone of node 1 now: "
          f"{sorted(kit.protocol('olsr').routing_table())} "
          "(idle interzone routes have aged out, as reactive routes do)")


if __name__ == "__main__":
    main()
