#!/usr/bin/env python3
"""Pluggable concurrency models under an event burst (paper section 4.4).

The same DYMO deployment runs unmodified under each concurrency model —
the models are "strictly orthogonal to the basic structure of the
framework".  The example verifies identical protocol behaviour under all
of them and reports the dispatch cost spectrum.

Run:  python examples/concurrency_models.py
"""

import threading
import time

from repro.concurrency.models import make_model
from repro.core import ManetKit
from repro.events.event import Event
from repro.events.types import ontology
from repro.sim import Simulation, topology

import repro.protocols  # noqa: F401

MODELS = (
    "single-threaded",
    "thread-per-n-messages",
    "thread-per-protocol",
    "thread-per-message",
)


def routed_network(model_name):
    """A DYMO chain running under the given model; returns delivery check."""
    sim = Simulation(seed=11)
    sim.add_nodes(4)
    ids = sim.node_ids()
    sim.topology.apply(topology.linear_chain(ids))
    kits = {}
    for node_id in ids:
        kit = ManetKit(sim.node(node_id))
        kit.load_protocol("dymo")
        kit.set_concurrency(model_name)
        sim.add_drain_hook(kit.drain)  # determinism under threaded models
        kits[node_id] = kit
    sim.run(5.0)
    got = []
    sim.node(ids[-1]).add_app_receiver(got.append)
    sim.node(ids[0]).send_data(ids[-1], b"burst")
    sim.run(2.0)
    for kit in kits.values():
        kit.manager.shutdown()
    return len(got) == 1


def dispatch_burst(model_name, burst=2000):
    """Raw dispatch cost of a burst through a no-op protocol."""

    class Unit:
        name = "bench"
        lock = threading.RLock()
        count = 0

        def process_event(self, _event):
            Unit.count += 1

    model = make_model(model_name)
    unit = Unit()
    events = [Event(ontology.get("HELLO_IN")) for _ in range(burst)]
    start = time.perf_counter()
    for event in events:
        model.dispatch(unit, event)
    model.drain(timeout=30.0)
    elapsed = time.perf_counter() - start
    model.shutdown()
    assert Unit.count == burst
    return elapsed / burst * 1e6


def main() -> None:
    print("model                  correct  us/event")
    print("---------------------  -------  --------")
    for model_name in MODELS:
        correct = routed_network(model_name)
        cost = dispatch_burst(model_name)
        print(f"{model_name:<22} {'yes' if correct else 'NO ':<8} {cost:7.2f}")
    print("\nsame protocol code, same outcome, different "
          "throughput/overhead trade-offs (paper section 4.4)")


if __name__ == "__main__":
    main()
