#!/usr/bin/env python3
"""The portability claim, live: unmodified protocols over real UDP sockets.

Everything in the other examples runs on the discrete-event simulator.
Here the *same* deployments — same OLSR/MPR and DYMO code, same System CF
— run on the real-time backend: wall-clock timers, real UDP datagrams on
127.0.0.1, receive processing on socket threads.  Only the node object
changed; "the System CF itself and ManetProtocol instances above it need
not be aware" (paper section 4.3).

Run:  python examples/real_udp_network.py     (takes ~8 real seconds)
"""

import time

from repro.core import ManetKit
from repro.rt import UdpNetwork

import repro.protocols  # noqa: F401


def wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


def main() -> None:
    net = UdpNetwork()
    nodes = [net.add_node() for _ in range(4)]
    ids = net.node_ids()
    net.set_connectivity(list(zip(ids, ids[1:])))  # a 4-node chain
    print("UDP chain on loopback:",
          {nid: f"127.0.0.1:{net.node(nid).port}" for nid in ids})

    kits = [ManetKit(node) for node in nodes]
    for kit in kits:
        kit.load_protocol("mpr", hello_interval=0.3)
        kit.load_protocol("olsr", tc_interval=0.5)

    print("\nwaiting for OLSR to converge over real sockets...")
    start = time.monotonic()
    olsr = kits[0].protocol("olsr")
    converged = wait_for(
        lambda: set(olsr.routing_table()) == set(ids[1:]), timeout=20.0
    )
    elapsed = time.monotonic() - start
    print(f"converged: {converged} in {elapsed:.1f} real seconds; "
          f"node 1 routes: {olsr.routing_table()}")

    got = []
    nodes[-1].add_app_receiver(got.append)
    sent_at = time.monotonic()
    nodes[0].send_data(ids[-1], b"three real UDP hops")
    wait_for(lambda: got, timeout=3.0)
    print(f"end-to-end datagram delivered in "
          f"{(time.monotonic() - sent_at) * 1000:.1f} ms "
          f"({got[0].payload.decode()!r})")

    frames = net.stats.total_control_frames
    print(f"\ncontrol frames actually transmitted on loopback: {frames}")
    net.shutdown()
    print("same protocol code, different substrate — nothing was ported.")


if __name__ == "__main__":
    main()
