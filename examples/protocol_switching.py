#!/usr/bin/env python3
"""Protocol switching: proactive OLSR while small, reactive DYMO when grown.

The paper's central motivation (section 1): "generally, proactive
protocols are better suited to smaller networks, reactive ones to larger
networks.  But where the network varies in size, an initial choice of
protocol can become sub-optimal" — so MANETKit nodes *switch protocols at
runtime*, guided by context, without interrupting traffic.

The switching policy here is a simple closure over the context
concentrator — MANETKit deliberately provides monitoring and enactment but
"leaves the decision making to higher-level software" (section 4.5).

Run:  python examples/protocol_switching.py
"""

from repro.core import ManetKit
from repro.sim import Simulation, topology

import repro.protocols  # noqa: F401

SIZE_THRESHOLD = 6  # switch to reactive routing beyond this network size

FAST_OLSR = {"mpr": {"hello_interval": 0.5}, "olsr": {"tc_interval": 1.0}}


def deploy_olsr(kit: ManetKit) -> None:
    kit.load_protocol("mpr", **FAST_OLSR["mpr"])
    kit.load_protocol("olsr", **FAST_OLSR["olsr"])


def switch_to_dymo(kit: ManetKit) -> None:
    """Serial redeployment: out with OLSR+MPR, in with DYMO."""
    kit.undeploy("olsr")
    kit.undeploy("mpr")
    kit.load_protocol("dymo")


def main() -> None:
    sim = Simulation(seed=7)
    sim.add_nodes(4)
    ids = sim.node_ids()
    sim.topology.apply(topology.linear_chain(ids))
    kits = {}
    for node_id in ids:
        kit = ManetKit(sim.node(node_id))
        deploy_olsr(kit)
        kits[node_id] = kit

    sim.run(15.0)
    print(f"[t={sim.now:5.1f}s] {len(ids)} nodes, OLSR converged; "
          f"node {ids[0]} routing table: "
          f"{kits[ids[0]].protocol('olsr').routing_table()}")

    # continuous traffic across the network while everything changes
    delivered = []
    sim.node(ids[-1]).add_app_receiver(delivered.append)
    flow = sim.start_cbr(ids[0], ids[-1], interval=0.25)
    sim.run(2.0)
    print(f"[t={sim.now:5.1f}s] CBR flow running, "
          f"{len(delivered)} packets delivered so far")

    # -- the network grows ---------------------------------------------------
    print(f"\n[t={sim.now:5.1f}s] four new nodes join the chain...")
    tail = ids[-1]
    for _ in range(4):
        node = sim.add_node()
        kit = ManetKit(node)
        deploy_olsr(kit)
        kits[node.node_id] = kit
        sim.topology.add_edge(tail, node.node_id)
        tail = node.node_id
    sim.run(5.0)

    # -- the policy reacts ---------------------------------------------------
    network_size = len(sim.node_ids())
    if network_size > SIZE_THRESHOLD:
        print(f"[t={sim.now:5.1f}s] size {network_size} > "
              f"{SIZE_THRESHOLD}: switching every node to reactive DYMO")
        for kit in kits.values():
            switch_to_dymo(kit)

    # OLSR's kernel routes keep carrying traffic until DYMO supersedes them
    sim.run(6.0)
    flow.stop()
    sim.run(0.5)
    print(f"[t={sim.now:5.1f}s] flow finished through the switch: "
          f"{len(delivered)} delivered, "
          f"delivery ratio {sim.stats.delivery_ratio():.0%}")

    # reactive routing now covers the grown network on demand
    far = sim.node_ids()[-1]
    probe = []
    sim.node(far).add_app_receiver(probe.append)
    sim.node(ids[0]).send_data(far, b"probe across 7 hops")
    sim.run(3.0)
    print(f"\nDYMO reached the new far node {far}: {bool(probe)}; "
          f"units on node {ids[0]}: "
          f"{[u.name for u in kits[ids[0]].units()]}")


if __name__ == "__main__":
    main()
