#!/usr/bin/env python3
"""Simultaneous OLSR + DYMO sharing one MPR CF (paper section 5.2).

"If a co-existing OLSR ManetProtocol instance is already deployed in the
framework, then the MPR CF is directly shareable between the reactive and
proactive protocols, thus leading to a leaner deployment."

This example deploys both protocols on every node, switches DYMO's
flooding to the shared MPR service, and shows the footprint saving of the
shared deployment versus two single-protocol deployments — the Table 2
amortisation mechanism, live.

Run:  python examples/shared_mpr.py
"""

from repro.analysis.footprint import footprint_kb
from repro.core import ManetKit
from repro.protocols.dymo.flooding import apply_optimised_flooding
from repro.sim import Simulation, topology

import repro.protocols  # noqa: F401

FAST_OLSR = {"mpr": {"hello_interval": 0.5}, "olsr": {"tc_interval": 1.0}}


def main() -> None:
    sim = Simulation(seed=5)
    sim.add_nodes(5)
    ids = sim.node_ids()
    sim.topology.apply(topology.linear_chain(ids))

    kits = {}
    for node_id in ids:
        kit = ManetKit(sim.node(node_id))
        kit.load_protocol("mpr", **FAST_OLSR["mpr"])
        kit.load_protocol("olsr", **FAST_OLSR["olsr"])
        kit.load_protocol("dymo")
        apply_optimised_flooding(kit)   # DYMO now floods through MPR
        kits[node_id] = kit

    kit0 = kits[ids[0]]
    print("units on node 1:", [u.name for u in kit0.units()])
    print("(one MPR CF serves both protocols; no Neighbour Detection CF)")
    print("\nevent wiring on node 1:")
    for provider, consumers in kit0.manager.subscription_table().items():
        if consumers:
            print(f"  {provider} -> {consumers}")

    sim.run(15.0)

    # OLSR proactively populated the kernel; DYMO idles until needed
    print(f"\nkernel routes at node 1 (from OLSR): "
          f"{[(r.destination, r.next_hop) for r in sim.node(ids[0]).kernel_table.routes()]}")
    got = []
    sim.node(ids[-1]).add_app_receiver(got.append)
    sim.start_cbr(ids[0], ids[-1], interval=0.2, count=10)
    sim.run(4.0)
    dymo = kit0.protocol("dymo")
    print(f"delivered {len(got)}/10 packets; DYMO discoveries initiated: "
          f"{dymo.dymo_state.discoveries_initiated} "
          "(zero: OLSR already had the routes)")

    # -- the leaner-deployment claim, measured --------------------------------
    iso = Simulation(seed=6)
    node_a, node_b = iso.add_node(), iso.add_node()
    kit_olsr = ManetKit(node_a)
    kit_olsr.load_protocol("mpr", **FAST_OLSR["mpr"])
    kit_olsr.load_protocol("olsr", **FAST_OLSR["olsr"])
    kit_dymo = ManetKit(node_b)
    kit_dymo.load_protocol("dymo")

    shared = footprint_kb([kit0])
    separate = footprint_kb([kit_olsr]) + footprint_kb([kit_dymo])
    print(f"\nfootprint, shared deployment:      {shared:8.1f} KB")
    print(f"footprint, two single deployments: {separate:8.1f} KB")
    print(f"sharing saves {100 * (1 - shared / separate):.0f}% "
          "(the Table 2 amortisation)")


if __name__ == "__main__":
    main()
