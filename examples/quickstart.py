#!/usr/bin/env python3
"""Quickstart: deploy DYMO on the paper's 5-node chain and route data.

This walks the core MANETKit workflow end to end:

1. build a simulated wireless network (the substrate standing in for the
   paper's 802.11b/g testbed);
2. create one MANETKit deployment per node and dynamically deploy the
   DYMO routing protocol by name;
3. send application data — the kernel's NetLink hooks trigger a reactive
   route discovery, buffered packets are re-injected on ROUTE_FOUND, and
   the datagram crosses four hops.

Run:  python examples/quickstart.py
"""

from repro.core import ManetKit
from repro.sim import Simulation, topology

import repro.protocols  # noqa: F401  (registers 'dymo', 'olsr', 'aodv', 'mpr')


def main() -> None:
    # -- 1. the network -----------------------------------------------------
    sim = Simulation(seed=42)
    sim.add_nodes(5)
    ids = sim.node_ids()
    sim.topology.apply(topology.linear_chain(ids))
    print(f"network: linear chain {ids} (only adjacent nodes hear each other)")

    # -- 2. one MANETKit deployment per node ---------------------------------
    kits = {}
    for node_id in ids:
        kit = ManetKit(sim.node(node_id))
        kit.load_protocol("dymo")  # dynamic deployment by name
        kits[node_id] = kit
    print("deployed units on node 1:",
          [unit.name for unit in kits[ids[0]].units()])

    # let neighbour detection learn the 1-hop neighbourhoods
    sim.run(5.0)
    nd = kits[ids[1]].protocol("neighbour-detection")
    print(f"node {ids[1]} neighbours: {nd.table.neighbours()}")

    # -- 3. send data: discovery happens on demand ---------------------------
    source, destination = ids[0], ids[-1]
    delivered = []
    sim.node(destination).add_app_receiver(delivered.append)

    start = sim.now
    sim.node(source).send_data(destination, b"hello, MANET!")
    while not delivered and sim.now - start < 5.0:
        sim.run(0.001)

    latency_ms = (sim.now - start) * 1000
    print(f"\nroute discovery + delivery took {latency_ms:.1f} ms "
          f"(paper's testbed: ~27 ms)")
    print(f"payload received at node {destination}: "
          f"{delivered[0].payload.decode()}")

    dymo = kits[source].protocol("dymo")
    print("\nroutes learned at the source (path accumulation teaches "
          "every hop):")
    for route in dymo.routing_table():
        print(f"  dest {route.destination} via {route.next_hop} "
              f"({route.hop_count} hops)")

    stats = sim.stats.summary()
    print(f"\ncontrol frames on the air: {stats['control_frames']:.0f}, "
          f"delivery ratio: {stats['delivery_ratio']:.0%}")


if __name__ == "__main__":
    main()
