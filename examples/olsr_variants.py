#!/usr/bin/env python3
"""OLSR variants via fine-grained dynamic reconfiguration (paper section 5.1).

Two runtime reconfigurations of a live OLSR deployment:

* **fish-eye routing** — a component requiring/providing ``TC_OUT`` is
  interposed declaratively (exclusive receive + tuple re-evaluation) and
  rescopes outgoing Topology Change messages;
* **power-aware routing** — the MPR CF's Hello Handler and MPR Calculator
  are hot-swapped for energy-aware versions and a ResidualPower component
  is plugged into the OLSR CF; relay selection then avoids battery-depleted
  nodes.  When the QoS requirement goes away, the variant is removed again
  because it "incurs significantly more overhead than standard OLSR".

Run:  python examples/olsr_variants.py
"""

from repro.core import ManetKit
from repro.protocols.olsr.fisheye import apply_fisheye, remove_fisheye
from repro.protocols.olsr.power_aware import apply_power_aware, remove_power_aware
from repro.sim import Simulation, topology
from repro.sim.node import BatteryModel

import repro.protocols  # noqa: F401

FAST_OLSR = {"mpr": {"hello_interval": 0.5}, "olsr": {"tc_interval": 1.0}}


def build_diamond():
    """1 - {2, 3} - 4: relay selection has a genuine choice to make."""
    sim = Simulation(seed=9)
    for node_id in (1, 2, 3, 4):
        battery = None
        if node_id == 2:  # node 2 starts with a nearly flat battery
            battery = BatteryModel(lambda: sim.scheduler.now)
            battery._consumed = 0.7
        sim.add_node(node_id=node_id, battery=battery)
    sim.topology.apply([(1, 2), (1, 3), (2, 4), (3, 4)])
    kits = {}
    for node_id in sim.node_ids():
        kit = ManetKit(sim.node(node_id))
        kit.load_protocol("mpr", **FAST_OLSR["mpr"])
        kit.load_protocol("olsr", **FAST_OLSR["olsr"])
        kits[node_id] = kit
    return sim, kits


def main() -> None:
    sim, kits = build_diamond()
    sim.run(15.0)
    print("diamond topology 1-{2,3}-4; node 2's battery is at "
          f"{sim.node(2).battery_level():.0%}")
    print(f"standard relay selection at node 1: "
          f"{kits[1].protocol('mpr').mpr_state.mpr_set} "
          "(POWER_STATUS already lowers node 2's advertised willingness)")

    # -- power-aware variant -------------------------------------------------
    print("\napplying the power-aware variant on every node "
          "(2 component replacements in MPR + ResidualPower into OLSR)...")
    for kit in kits.values():
        apply_power_aware(kit)
    sim.run(20.0)
    mpr_set = kits[1].protocol("mpr").mpr_state.mpr_set
    print(f"power-aware relay selection at node 1: {mpr_set} "
          "(energy link costs reinforce avoiding node 2, and residual "
          "levels now travel network-wide)")
    store = kits[4].protocol("olsr").control.child("residual-power")
    print("residual power known at node 4:",
          {n: f"{v:.0%}" for n, v in sorted(store.residual_of.items())})

    print("\nQoS requirement gone: removing the variant again...")
    for kit in kits.values():
        remove_power_aware(kit)
    print("MPR calculator back to:",
          type(kits[1].protocol("mpr").calculator).__name__)

    # -- fish-eye variant ------------------------------------------------------
    print("\ninserting the fish-eye component (requires+provides TC_OUT, "
          "exclusive receive)...")
    fisheye = apply_fisheye(kits[1])
    print("wiring through the fish-eye unit:",
          kits[1].manager.subscription_table()["olsr"])
    sim.run(10.0)
    print(f"TCs rescoped by node 1's fish-eye: {fisheye.scoper.rescoped}, "
          f"relays passed through untouched: {fisheye.scoper.passed_through}")
    remove_fisheye(kits[1])
    print("fish-eye removed; tuple-based wiring healed automatically:",
          kits[1].manager.subscription_table()["olsr"])


if __name__ == "__main__":
    main()
