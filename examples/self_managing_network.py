#!/usr/bin/env python3
"""Closing the loop: policy-driven, network-coordinated reconfiguration.

The paper stops at providing context monitoring and reconfiguration
enactment, leaving decision making to "higher-level software" (§4.5) and
naming "policy-driven decision making [and] coordinated distributed
dynamic reconfiguration" as future work (§7).  This example is that
future work, built on the extensions in this repository:

* a **PolicyEngine** on one designated node evaluates an
  event-condition-action rule over the context concentrator;
* when the rule fires (the proactive routing horizon has grown past the
  threshold), the node doesn't just reconfigure itself — it floods a
  reconfiguration *command* through the **ReconfigCoordinatorCF**;
* every node enacts the switch at the same simulated instant, so the
  whole network moves from proactive OLSR to reactive DYMO together.

Run:  python examples/self_managing_network.py
"""

from repro.core import ManetKit
from repro.core.coordination import deploy_coordinator
from repro.core.policy import PolicyEngine, Rule
from repro.sim import Simulation, topology

import repro.protocols  # noqa: F401

SIZE_THRESHOLD = 6
FAST_OLSR = {"mpr": {"hello_interval": 0.5}, "olsr": {"tc_interval": 1.0}}


def deploy_node(sim, node):
    kit = ManetKit(node)
    kit.load_protocol("mpr", **FAST_OLSR["mpr"])
    kit.load_protocol("olsr", **FAST_OLSR["olsr"])
    coordinator = deploy_coordinator(kit, lead_time=1.5)
    return kit, coordinator


def main() -> None:
    sim = Simulation(seed=8)
    sim.add_nodes(4)
    ids = sim.node_ids()
    sim.topology.apply(topology.linear_chain(ids))
    kits, coordinators = {}, {}
    for node_id in ids:
        kits[node_id], coordinators[node_id] = deploy_node(
            sim, sim.node(node_id)
        )

    # the designated "manager" node watches its routing horizon and, when
    # the network outgrows the proactive sweet spot, proposes a
    # coordinated switch
    manager_id = ids[0]

    def network_too_big(context) -> bool:
        return (
            context.has_protocol("olsr")
            and context.known_destinations() >= SIZE_THRESHOLD
        )

    def propose_switch(deployment) -> None:
        print(f"[t={sim.now:5.1f}s] policy fired on node {manager_id}: "
              f"{SIZE_THRESHOLD}+ destinations known -> proposing "
              "network-wide switch to DYMO")
        coordinators[manager_id].propose("switch-to-dymo")

    engine = PolicyEngine(kits[manager_id], interval=2.0).start()
    engine.add_rule(
        Rule("grown-past-proactive", network_too_big, propose_switch,
             once=True)
    )

    sim.run(12.0)
    print(f"[t={sim.now:5.1f}s] 4 nodes, OLSR stable "
          f"(policy evaluated {engine.evaluations}x, no firing yet)")

    print(f"\n[t={sim.now:5.1f}s] four more nodes join the chain...")
    tail = ids[-1]
    for _ in range(4):
        node = sim.add_node()
        kit, coordinator = deploy_node(sim, node)
        kits[node.node_id] = kit
        coordinators[node.node_id] = coordinator
        sim.topology.add_edge(tail, node.node_id)
        tail = node.node_id

    sim.run(15.0)  # OLSR learns the grown network; the policy fires;
    #                the command floods; everyone enacts simultaneously

    print(f"\n[t={sim.now:5.1f}s] after the coordinated switch:")
    switched = sum(
        1 for kit in kits.values() if kit.manager.unit("dymo") is not None
    )
    print(f"  nodes running DYMO: {switched}/{len(kits)}")
    enact_times = sorted(
        record.activate_at
        for coordinator in coordinators.values()
        for record in coordinator.log
        if record.enacted
    )
    print(f"  enactment instants: min={enact_times[0]:.3f}s "
          f"max={enact_times[-1]:.3f}s (simultaneous)")

    far = sorted(kits)[-1]
    probe = []
    sim.node(far).add_app_receiver(probe.append)
    sim.node(manager_id).send_data(far, b"reactive era")
    sim.run(3.0)
    print(f"  reactive route to new far node {far}: "
          f"{'established' if probe else 'FAILED'}")


if __name__ == "__main__":
    main()
